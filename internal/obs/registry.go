package obs

import (
	"sort"
)

// Counter is a monotonically increasing count. The nil counter is a
// valid no-op, so instrumented code can resolve handles once at
// construction and increment unconditionally.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value (or peak) metric. The nil gauge is a no-op.
type Gauge struct {
	v   float64
	set bool
}

// Set records v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v, g.set = v, true
	}
}

// Max records v only if it exceeds the current value (peak tracking).
func (g *Gauge) Max(v float64) {
	if g != nil && (!g.set || v > g.v) {
		g.v, g.set = v, true
	}
}

// Value returns the current value (0 for nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v <= Edges[i]; the final implicit bucket counts overflows. Fixed edges
// keep snapshots mergeable across trials and byte-identical across runs.
type Histogram struct {
	edges  []float64
	counts []uint64 // len(edges)+1; the last bucket is +Inf
	sum    float64
	n      uint64
}

// Observe records one value. Nil histograms drop it.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	h.counts[sort.SearchFloat64s(h.edges, v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry holds named metrics for one trial. It is not safe for
// concurrent use; the simulator is single-threaded per trial and each
// trial owns its own registry, which is what keeps parallel experiment
// runs deterministic. The nil registry hands out nil (no-op) handles.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket edges on first use. Later calls reuse the existing
// histogram (and its original edges) regardless of the edges argument,
// so a metric name always has one fixed bucket layout.
func (r *Registry) Histogram(name string, edges []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		e := append([]float64(nil), edges...)
		h = &Histogram{edges: e, counts: make([]uint64, len(e)+1)}
		r.hists[name] = h
	}
	return h
}

// MetricValue is one named scalar in a snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Counts has one entry
// per edge plus a final overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Edges  []float64 `json:"edges"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is an immutable, name-sorted view of a registry, suitable for
// embedding in trial results and diffing byte-for-byte across runs.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state with deterministic
// (sorted) ordering. A nil registry snapshots to nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: float64(r.counters[name].Value())})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:   name,
			Edges:  append([]float64(nil), h.edges...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.n,
			Sum:    h.sum,
		})
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Merge sums the given snapshots: counters and histogram buckets add,
// gauges keep their maximum (peak semantics). Nil snapshots are skipped;
// merging none returns an empty snapshot. Histograms sharing a name must
// share a bucket layout (they do, by Registry.Histogram's contract).
func Merge(snaps ...*Snapshot) *Snapshot {
	counters := map[string]float64{}
	gauges := map[string]float64{}
	hists := map[string]*HistogramValue{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, c := range s.Counters {
			counters[c.Name] += c.Value
		}
		for _, g := range s.Gauges {
			if cur, ok := gauges[g.Name]; !ok || g.Value > cur {
				gauges[g.Name] = g.Value
			}
		}
		for _, h := range s.Histograms {
			acc := hists[h.Name]
			if acc == nil {
				acc = &HistogramValue{
					Name:   h.Name,
					Edges:  append([]float64(nil), h.Edges...),
					Counts: make([]uint64, len(h.Counts)),
				}
				hists[h.Name] = acc
			}
			for i := range h.Counts {
				acc.Counts[i] += h.Counts[i]
			}
			acc.Count += h.Count
			acc.Sum += h.Sum
		}
	}
	out := &Snapshot{}
	for _, name := range sortedKeys(counters) {
		out.Counters = append(out.Counters, MetricValue{Name: name, Value: counters[name]})
	}
	for _, name := range sortedKeys(gauges) {
		out.Gauges = append(out.Gauges, MetricValue{Name: name, Value: gauges[name]})
	}
	for _, name := range sortedKeys(hists) {
		out.Histograms = append(out.Histograms, *hists[name])
	}
	return out
}
