// Package simnet models the shared resources whose contention causes
// performance variability: the per-pod fat-tree network and the global
// parallel filesystem (Lustre on the paper's Quartz cluster).
//
// Load is tracked in normalized units where 1.0 is the nominal capacity of
// the resource. Running jobs, the all-to-all noise job, and ambient
// background traffic each register additive load contributions. The state
// keeps a complete history of load epochs so that telemetry can be
// aggregated over any past window without sampling every node at every
// tick, and notifies subscribers whenever the load changes so running jobs
// can re-integrate their remaining work.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"rush/internal/cluster"
)

// Contribution is one source's additive load. Network load is per pod;
// core-link and filesystem load are global.
type Contribution struct {
	// PodNet maps pod index -> network load injected into that pod.
	PodNet map[int]float64
	// Core is load on the fat tree's upper (inter-pod) links; only
	// traffic between pods contributes here.
	Core float64
	// FS is load on the global filesystem.
	FS float64
}

// State tracks the current load on every shared resource.
type State struct {
	topo    cluster.Topology
	podNet  []float64
	core    float64
	fs      float64
	now     func() float64
	hist    *History
	subs    []func()
	version uint64
}

// NewState returns a state for topo whose history is stamped with times
// from now (typically sim.Engine.Now). It returns an error for an
// invalid topology.
func NewState(topo cluster.Topology, now func() float64) (*State, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	s := &State{
		topo:   topo,
		podNet: make([]float64, topo.Pods()),
		now:    now,
		hist:   &History{pods: topo.Pods()},
	}
	s.hist.append(now(), s.podNet, s.core, s.fs)
	return s, nil
}

// Topology returns the state's topology.
func (s *State) Topology() cluster.Topology { return s.topo }

// Version increments on every load change; callers can cheaply detect
// staleness.
func (s *State) Version() uint64 { return s.version }

// Subscribe registers fn to run after every load change.
func (s *State) Subscribe(fn func()) { s.subs = append(s.subs, fn) }

// Apply adds a contribution to the current load.
func (s *State) Apply(c Contribution) {
	s.mutate(c, +1)
}

// Remove subtracts a previously applied contribution. Small negative
// residues from float round-off are clamped to zero.
func (s *State) Remove(c Contribution) {
	s.mutate(c, -1)
}

func (s *State) mutate(c Contribution, sign float64) {
	for pod, l := range c.PodNet {
		if pod < 0 || pod >= len(s.podNet) {
			panic(fmt.Sprintf("simnet: pod %d out of range (%d pods)", pod, len(s.podNet)))
		}
		s.podNet[pod] += sign * l
		if s.podNet[pod] < 0 {
			if s.podNet[pod] < -1e-9 {
				panic(fmt.Sprintf("simnet: pod %d load went negative: %v", pod, s.podNet[pod]))
			}
			s.podNet[pod] = 0
		}
	}
	s.core += sign * c.Core
	if s.core < 0 {
		if s.core < -1e-9 {
			panic(fmt.Sprintf("simnet: core load went negative: %v", s.core))
		}
		s.core = 0
	}
	s.fs += sign * c.FS
	if s.fs < 0 {
		if s.fs < -1e-9 {
			panic(fmt.Sprintf("simnet: fs load went negative: %v", s.fs))
		}
		s.fs = 0
	}
	s.version++
	s.hist.append(s.now(), s.podNet, s.core, s.fs)
	for _, fn := range s.subs {
		fn()
	}
}

// NetLoad returns the current network load in pod.
func (s *State) NetLoad(pod int) float64 { return s.podNet[pod] }

// CoreLoad returns the current inter-pod (core link) load.
func (s *State) CoreLoad() float64 { return s.core }

// FSLoad returns the current filesystem load.
func (s *State) FSLoad() float64 { return s.fs }

// congestionThreshold is the normalized load beyond which contention
// begins to hurt: links and OSTs have headroom below it.
const congestionThreshold = 0.65

// Overload maps a load level to a contention factor in [0, +inf): zero at
// or below the congestion threshold, 1.0 at nominal capacity, growing
// quadratically beyond. The convexity makes badly congested periods
// clearly worse than mildly busy ones, which is what gives the paper's
// run-time distributions their long right tails.
func Overload(load float64) float64 {
	if load <= congestionThreshold {
		return 0
	}
	x := (load - congestionThreshold) / (1 - congestionThreshold)
	return x * x
}

// NetOverload returns the contention factor of pod's network.
func (s *State) NetOverload(pod int) float64 { return Overload(s.podNet[pod]) }

// CoreOverload returns the contention factor of the inter-pod links.
func (s *State) CoreOverload() float64 { return Overload(s.core) }

// FSOverload returns the contention factor of the filesystem.
func (s *State) FSOverload() float64 { return Overload(s.fs) }

// AllocNetOverload returns the mean network contention factor across the
// pods an allocation touches, weighted by the number of the allocation's
// nodes in each pod.
func (s *State) AllocNetOverload(alloc cluster.Allocation) float64 {
	if len(alloc.Nodes) == 0 {
		return 0
	}
	var sum float64
	for _, n := range alloc.Nodes {
		sum += s.NetOverload(s.topo.PodOf(n))
	}
	return sum / float64(len(alloc.Nodes))
}

// History returns the recorded load history.
func (s *State) History() *History { return s.hist }

// Epoch is a half-open interval of constant load beginning at T.
type Epoch struct {
	T      float64
	PodNet []float64
	Core   float64
	FS     float64
}

// History is the append-only record of load epochs. Epoch i covers
// [epochs[i].T, epochs[i+1].T); the final epoch extends to the present.
type History struct {
	pods   int
	epochs []Epoch
}

func (h *History) append(t float64, podNet []float64, core, fs float64) {
	cp := make([]float64, len(podNet))
	copy(cp, podNet)
	if n := len(h.epochs); n > 0 {
		if h.epochs[n-1].T == t {
			// Several mutations at the same instant collapse into one epoch.
			h.epochs[n-1].PodNet = cp
			h.epochs[n-1].Core = core
			h.epochs[n-1].FS = fs
			return
		}
		if h.epochs[n-1].T > t {
			panic(fmt.Sprintf("simnet: history time went backwards: %v after %v", t, h.epochs[n-1].T))
		}
	}
	h.epochs = append(h.epochs, Epoch{T: t, PodNet: cp, Core: core, FS: fs})
}

// Len returns the number of recorded epochs.
func (h *History) Len() int { return len(h.epochs) }

// LastT returns the start time of the most recent epoch, or -Inf when no
// epoch has been recorded. Epochs strictly older than LastT are final:
// only the newest epoch can still be collapsed into by a same-instant
// mutation, so values derived from loads at times before LastT may be
// cached safely.
func (h *History) LastT() float64 {
	if len(h.epochs) == 0 {
		return math.Inf(-1)
	}
	return h.epochs[len(h.epochs)-1].T
}

// Slice is one piece of a window query: constant load over [T0, T1).
type Slice struct {
	T0, T1 float64
	PodNet []float64
	Core   float64
	FS     float64
}

// Window returns the sequence of constant-load slices covering [t0, t1).
// Requests before the first recorded epoch are clamped to it.
func (h *History) Window(t0, t1 float64) []Slice {
	return h.WindowInto(t0, t1, nil)
}

// WindowInto is Window appending into buf (pass buf[:0] to reuse its
// backing array), so hot-path callers can query windows without
// allocating. The returned slices alias the history's epochs; they stay
// valid until the next Prune.
func (h *History) WindowInto(t0, t1 float64, buf []Slice) []Slice {
	out := buf
	if t1 <= t0 || len(h.epochs) == 0 {
		return out
	}
	// First epoch whose start is > t0, minus one, is the epoch containing t0.
	i := sort.Search(len(h.epochs), func(i int) bool { return h.epochs[i].T > t0 })
	if i > 0 {
		i--
	}
	for ; i < len(h.epochs); i++ {
		e := h.epochs[i]
		start := e.T
		if i == 0 || start < t0 {
			// The first epoch also describes all time before it was
			// recorded: the state existed (idle) before any mutation.
			start = t0
		}
		end := t1
		if i+1 < len(h.epochs) && h.epochs[i+1].T < t1 {
			end = h.epochs[i+1].T
		}
		if end <= start {
			if e.T >= t1 {
				break
			}
			continue
		}
		out = append(out, Slice{T0: start, T1: end, PodNet: e.PodNet, Core: e.Core, FS: e.FS})
		if end == t1 {
			break
		}
	}
	return out
}

// Prune drops history strictly older than t, keeping the epoch containing
// t so that Window queries starting at t still resolve. Long-running
// collection campaigns call this to bound memory.
func (h *History) Prune(t float64) {
	i := sort.Search(len(h.epochs), func(i int) bool { return h.epochs[i].T > t })
	if i > 0 {
		i--
	}
	if i > 0 {
		h.epochs = append([]Epoch(nil), h.epochs[i:]...)
	}
}
