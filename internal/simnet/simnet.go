// Package simnet models the shared resources whose contention causes
// performance variability: the per-pod fat-tree network, the fat tree's
// upper (inter-pod core) links, and the global parallel filesystem
// (Lustre on the paper's Quartz cluster).
//
// Load is tracked in normalized units where 1.0 is the nominal capacity of
// the resource. Running jobs, the all-to-all noise job, and ambient
// background traffic each register additive load contributions. The state
// keeps a complete history of load epochs so that telemetry can be
// aggregated over any past window without sampling every node at every
// tick, and notifies subscribers whenever the load changes so running jobs
// can re-integrate their remaining work.
//
// # Incremental change tracking
//
// At full-machine scale (the paper's Quartz is 2,988 nodes across sixteen
// pods) the consumers of load changes must not pay for the whole machine
// on every mutation. The state therefore tracks dirtiness at the
// granularity a slowdown computation actually consumes: a pod is dirty
// only when its contention factor (Overload of its load) changed, not
// merely its raw load, and the core-link and filesystem loads are
// separately versioned globals with their own dirtiness bits. Subscribers
// registered through SubscribeChanges receive a Change describing exactly
// which pods and globals crossed to a different contention factor, so a
// machine with hundreds of running jobs re-integrates only the jobs whose
// inputs moved. Mutations apply pod loads in ascending pod order
// regardless of how the Contribution map iterates, keeping every
// notification — and everything downstream of it — deterministic.
package simnet

import (
	"fmt"
	"math"
	"sort"

	"rush/internal/cluster"
)

// Contribution is one source's additive load. Network load is per pod;
// core-link and filesystem load are global.
type Contribution struct {
	// PodNet maps pod index -> network load injected into that pod.
	PodNet map[int]float64
	// Core is load on the fat tree's upper (inter-pod) links; only
	// traffic between pods contributes here.
	Core float64
	// FS is load on the global filesystem.
	FS float64
}

// Change describes which resources a single mutation moved to a
// different contention factor. A pod, the core links, or the filesystem
// is reported only when Overload of its load actually changed — raw load
// movement entirely below the congestion threshold dirties nothing,
// because no slowdown computed from the state can have changed.
type Change struct {
	// Pods lists, in ascending order, the pods whose network contention
	// factor changed. The slice aliases the state's scratch buffer and is
	// valid only for the duration of the callback; copy it to retain.
	Pods []int
	// Core reports whether the inter-pod core-link contention factor
	// changed.
	Core bool
	// FS reports whether the filesystem contention factor changed.
	FS bool
}

// Empty reports whether the change moved no contention factor at all.
func (c Change) Empty() bool { return len(c.Pods) == 0 && !c.Core && !c.FS }

// State tracks the current load on every shared resource.
type State struct {
	topo   cluster.Topology
	podNet []float64
	core   float64
	fs     float64
	now    func() float64
	hist   *History
	subs   []func()
	chSubs []func(Change)

	version uint64
	podVer  []uint64
	coreVer uint64
	fsVer   uint64

	keyBuf   []int // sorted Contribution pods, reused across mutations
	dirtyBuf []int // pods whose Overload changed, reused across mutations
	inMutate bool
}

// NewState returns a state for topo whose history is stamped with times
// from now (typically sim.Engine.Now). It returns an error for an
// invalid topology.
func NewState(topo cluster.Topology, now func() float64) (*State, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	s := &State{
		topo:   topo,
		podNet: make([]float64, topo.Pods()),
		podVer: make([]uint64, topo.Pods()),
		now:    now,
		hist:   &History{pods: topo.Pods()},
	}
	s.hist.append(now(), s.podNet, s.core, s.fs)
	return s, nil
}

// Topology returns the state's topology.
func (s *State) Topology() cluster.Topology { return s.topo }

// Version increments on every mutation; callers can cheaply detect
// staleness of anything derived from the whole state.
func (s *State) Version() uint64 { return s.version }

// PodVersion increments whenever pod's raw network load changes, so
// per-pod caches can be validated without touching the other pods.
func (s *State) PodVersion(pod int) uint64 { return s.podVer[pod] }

// CoreVersion increments whenever the raw core-link load changes.
func (s *State) CoreVersion() uint64 { return s.coreVer }

// FSVersion increments whenever the raw filesystem load changes.
func (s *State) FSVersion() uint64 { return s.fsVer }

// Subscribe registers fn to run after every mutation, whether or not any
// contention factor moved. Prefer SubscribeChanges at scale: a legacy
// subscriber pays for every mutation machine-wide.
func (s *State) Subscribe(fn func()) { s.subs = append(s.subs, fn) }

// SubscribeChanges registers fn to run after every mutation with the set
// of resources whose contention factor changed (possibly empty).
// Callbacks must not mutate the state re-entrantly — Apply/Remove from
// inside a callback panics — and must not retain Change.Pods beyond the
// call.
func (s *State) SubscribeChanges(fn func(Change)) { s.chSubs = append(s.chSubs, fn) }

// Apply adds a contribution to the current load.
func (s *State) Apply(c Contribution) {
	s.mutate(c, +1)
}

// Remove subtracts a previously applied contribution. Small negative
// residues from float round-off are clamped to zero.
func (s *State) Remove(c Contribution) {
	s.mutate(c, -1)
}

func (s *State) mutate(c Contribution, sign float64) {
	if s.inMutate {
		panic("simnet: re-entrant mutation from a subscriber callback")
	}
	s.inMutate = true
	defer func() { s.inMutate = false }()

	// Pod loads are applied in ascending pod order. Each pod's update is
	// independent, so the final loads are bit-identical to any other
	// order — sorting exists so the dirty set, and every notification
	// built from it, is deterministic regardless of map iteration.
	keys := s.keyBuf[:0]
	for pod := range c.PodNet {
		if pod < 0 || pod >= len(s.podNet) {
			panic(fmt.Sprintf("simnet: pod %d out of range (%d pods)", pod, len(s.podNet)))
		}
		keys = append(keys, pod)
	}
	sort.Ints(keys)
	dirty := s.dirtyBuf[:0]
	for _, pod := range keys {
		old := s.podNet[pod]
		nv := old + sign*c.PodNet[pod]
		if nv < 0 {
			if nv < -1e-9 {
				panic(fmt.Sprintf("simnet: pod %d load went negative: %v", pod, nv))
			}
			nv = 0
		}
		if nv == old {
			continue
		}
		s.podNet[pod] = nv
		s.podVer[pod]++
		if Overload(nv) != Overload(old) {
			dirty = append(dirty, pod)
		}
	}
	var coreDirty, fsDirty bool
	oldCore := s.core
	nv := oldCore + sign*c.Core
	if nv < 0 {
		if nv < -1e-9 {
			panic(fmt.Sprintf("simnet: core load went negative: %v", nv))
		}
		nv = 0
	}
	if nv != oldCore {
		s.core = nv
		s.coreVer++
		coreDirty = Overload(nv) != Overload(oldCore)
	}
	oldFS := s.fs
	nv = oldFS + sign*c.FS
	if nv < 0 {
		if nv < -1e-9 {
			panic(fmt.Sprintf("simnet: fs load went negative: %v", nv))
		}
		nv = 0
	}
	if nv != oldFS {
		s.fs = nv
		s.fsVer++
		fsDirty = Overload(nv) != Overload(oldFS)
	}
	s.version++
	// History records every raw-load epoch even when no contention
	// factor moved: telemetry samples raw loads, not just overloads.
	s.hist.append(s.now(), s.podNet, s.core, s.fs)
	s.keyBuf, s.dirtyBuf = keys, dirty
	for _, fn := range s.subs {
		fn()
	}
	if len(s.chSubs) > 0 {
		ch := Change{Pods: dirty, Core: coreDirty, FS: fsDirty}
		for _, fn := range s.chSubs {
			fn(ch)
		}
	}
}

// NetLoad returns the current network load in pod.
func (s *State) NetLoad(pod int) float64 { return s.podNet[pod] }

// CoreLoad returns the current inter-pod (core link) load.
func (s *State) CoreLoad() float64 { return s.core }

// FSLoad returns the current filesystem load.
func (s *State) FSLoad() float64 { return s.fs }

// congestionThreshold is the normalized load beyond which contention
// begins to hurt: links and OSTs have headroom below it.
const congestionThreshold = 0.65

// Overload maps a load level to a contention factor in [0, +inf): zero at
// or below the congestion threshold, 1.0 at nominal capacity, growing
// quadratically beyond. The convexity makes badly congested periods
// clearly worse than mildly busy ones, which is what gives the paper's
// run-time distributions their long right tails.
func Overload(load float64) float64 {
	if load <= congestionThreshold {
		return 0
	}
	x := (load - congestionThreshold) / (1 - congestionThreshold)
	return x * x
}

// NetOverload returns the contention factor of pod's network.
func (s *State) NetOverload(pod int) float64 { return Overload(s.podNet[pod]) }

// CoreOverload returns the contention factor of the inter-pod links.
func (s *State) CoreOverload() float64 { return Overload(s.core) }

// FSOverload returns the contention factor of the filesystem.
func (s *State) FSOverload() float64 { return Overload(s.fs) }

// AllocNetOverload returns the mean network contention factor across the
// pods an allocation touches, weighted by the number of the allocation's
// nodes in each pod.
func (s *State) AllocNetOverload(alloc cluster.Allocation) float64 {
	if len(alloc.Nodes) == 0 {
		return 0
	}
	var sum float64
	for _, n := range alloc.Nodes {
		sum += s.NetOverload(s.topo.PodOf(n))
	}
	return sum / float64(len(alloc.Nodes))
}

// History returns the recorded load history.
func (s *State) History() *History { return s.hist }

// Epoch is a half-open interval of constant load beginning at T.
type Epoch struct {
	T      float64
	PodNet []float64
	Core   float64
	FS     float64
}

// History is the append-only record of load epochs. Epoch i covers
// [epochs[i].T, epochs[i+1].T); the final epoch extends to the present.
type History struct {
	pods   int
	epochs []Epoch
}

func (h *History) append(t float64, podNet []float64, core, fs float64) {
	cp := make([]float64, len(podNet))
	copy(cp, podNet)
	if n := len(h.epochs); n > 0 {
		if h.epochs[n-1].T == t {
			// Several mutations at the same instant collapse into one epoch.
			h.epochs[n-1].PodNet = cp
			h.epochs[n-1].Core = core
			h.epochs[n-1].FS = fs
			return
		}
		if h.epochs[n-1].T > t {
			panic(fmt.Sprintf("simnet: history time went backwards: %v after %v", t, h.epochs[n-1].T))
		}
	}
	h.epochs = append(h.epochs, Epoch{T: t, PodNet: cp, Core: core, FS: fs})
}

// Len returns the number of recorded epochs.
func (h *History) Len() int { return len(h.epochs) }

// LastT returns the start time of the most recent epoch, or -Inf when no
// epoch has been recorded. Epochs strictly older than LastT are final:
// only the newest epoch can still be collapsed into by a same-instant
// mutation, so values derived from loads at times before LastT may be
// cached safely.
func (h *History) LastT() float64 {
	if len(h.epochs) == 0 {
		return math.Inf(-1)
	}
	return h.epochs[len(h.epochs)-1].T
}

// Slice is one piece of a window query: constant load over [T0, T1).
type Slice struct {
	T0, T1 float64
	PodNet []float64
	Core   float64
	FS     float64
}

// Window returns the sequence of constant-load slices covering [t0, t1).
// Requests before the first recorded epoch are clamped to it.
func (h *History) Window(t0, t1 float64) []Slice {
	return h.WindowInto(t0, t1, nil)
}

// WindowInto is Window appending into buf (pass buf[:0] to reuse its
// backing array), so hot-path callers can query windows without
// allocating. The returned slices alias the history's epochs; they stay
// valid until the next Prune.
func (h *History) WindowInto(t0, t1 float64, buf []Slice) []Slice {
	out := buf
	if t1 <= t0 || len(h.epochs) == 0 {
		return out
	}
	// First epoch whose start is > t0, minus one, is the epoch containing t0.
	i := sort.Search(len(h.epochs), func(i int) bool { return h.epochs[i].T > t0 })
	if i > 0 {
		i--
	}
	for ; i < len(h.epochs); i++ {
		e := h.epochs[i]
		start := e.T
		if i == 0 || start < t0 {
			// The first epoch also describes all time before it was
			// recorded: the state existed (idle) before any mutation.
			start = t0
		}
		end := t1
		if i+1 < len(h.epochs) && h.epochs[i+1].T < t1 {
			end = h.epochs[i+1].T
		}
		if end <= start {
			if e.T >= t1 {
				break
			}
			continue
		}
		out = append(out, Slice{T0: start, T1: end, PodNet: e.PodNet, Core: e.Core, FS: e.FS})
		if end == t1 {
			break
		}
	}
	return out
}

// Prune drops history strictly older than t, keeping the epoch containing
// t so that Window queries starting at t still resolve. Long-running
// collection campaigns call this to bound memory.
func (h *History) Prune(t float64) {
	i := sort.Search(len(h.epochs), func(i int) bool { return h.epochs[i].T > t })
	if i > 0 {
		i--
	}
	if i > 0 {
		h.epochs = append([]Epoch(nil), h.epochs[i:]...)
	}
}
