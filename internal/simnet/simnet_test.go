package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"rush/internal/cluster"
	"rush/internal/sim"
)

func podTopo() cluster.Topology {
	return cluster.Topology{Nodes: 64, PodSize: 16, CoresPerNode: 4}
}

func mustState(topo cluster.Topology, now func() float64) *State {
	s, err := NewState(topo, now)
	if err != nil {
		panic(err)
	}
	return s
}

func TestApplyRemoveRoundTrip(t *testing.T) {
	now := 0.0
	s := mustState(podTopo(), func() float64 { return now })
	c := Contribution{PodNet: map[int]float64{0: 0.3, 2: 0.1}, FS: 0.2}
	s.Apply(c)
	if got := s.NetLoad(0); got != 0.3 {
		t.Fatalf("pod 0 load = %v", got)
	}
	if got := s.NetLoad(1); got != 0 {
		t.Fatalf("pod 1 load = %v", got)
	}
	if got := s.FSLoad(); got != 0.2 {
		t.Fatalf("fs load = %v", got)
	}
	s.Remove(c)
	if s.NetLoad(0) != 0 || s.NetLoad(2) != 0 || s.FSLoad() != 0 {
		t.Fatal("loads should return to zero")
	}
}

func TestRemoveTooMuchPanics(t *testing.T) {
	s := mustState(podTopo(), func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("removing unapplied load should panic")
		}
	}()
	s.Remove(Contribution{PodNet: map[int]float64{0: 0.5}})
}

func TestOverloadShape(t *testing.T) {
	if Overload(0) != 0 || Overload(0.65) != 0 {
		t.Fatal("overload below threshold should be zero")
	}
	if got := Overload(1.0); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("overload at capacity = %v, want 1", got)
	}
	if Overload(0.8) >= Overload(0.95) {
		t.Fatal("overload must be increasing")
	}
	// Convex: the second half of the ramp hurts more than the first.
	if Overload(1.0)-Overload(0.825) <= Overload(0.825)-Overload(0.65) {
		t.Fatal("overload should be convex")
	}
}

func TestVersionAndSubscribe(t *testing.T) {
	s := mustState(podTopo(), func() float64 { return 0 })
	calls := 0
	s.Subscribe(func() { calls++ })
	v0 := s.Version()
	s.Apply(Contribution{FS: 0.1})
	s.Apply(Contribution{PodNet: map[int]float64{1: 0.2}})
	if s.Version() != v0+2 {
		t.Fatalf("version = %d, want %d", s.Version(), v0+2)
	}
	if calls != 2 {
		t.Fatalf("subscriber called %d times, want 2", calls)
	}
}

func TestHistoryWindow(t *testing.T) {
	now := 0.0
	s := mustState(podTopo(), func() float64 { return now })
	now = 10
	s.Apply(Contribution{PodNet: map[int]float64{0: 0.5}})
	now = 20
	s.Apply(Contribution{PodNet: map[int]float64{0: 0.3}})
	now = 30
	s.Remove(Contribution{PodNet: map[int]float64{0: 0.8}})

	slices := s.History().Window(5, 25)
	if len(slices) != 3 {
		t.Fatalf("expected 3 slices, got %d: %+v", len(slices), slices)
	}
	// [5,10) load 0; [10,20) load .5; [20,25) load .8
	if slices[0].T0 != 5 || slices[0].T1 != 10 || slices[0].PodNet[0] != 0 {
		t.Fatalf("slice 0 wrong: %+v", slices[0])
	}
	if slices[1].T0 != 10 || slices[1].T1 != 20 || slices[1].PodNet[0] != 0.5 {
		t.Fatalf("slice 1 wrong: %+v", slices[1])
	}
	if slices[2].T0 != 20 || slices[2].T1 != 25 || slices[2].PodNet[0] != 0.8 {
		t.Fatalf("slice 2 wrong: %+v", slices[2])
	}
}

func TestHistoryWindowBeforeFirstEpoch(t *testing.T) {
	now := 100.0
	s := mustState(podTopo(), func() float64 { return now })
	slices := s.History().Window(0, 50)
	if len(slices) != 1 || slices[0].T0 != 0 || slices[0].T1 != 50 {
		t.Fatalf("pre-history window should clamp to first epoch: %+v", slices)
	}
}

func TestHistoryWindowEmptyAndInverted(t *testing.T) {
	s := mustState(podTopo(), func() float64 { return 0 })
	if got := s.History().Window(10, 10); got != nil {
		t.Fatalf("empty window should be nil, got %+v", got)
	}
	if got := s.History().Window(10, 5); got != nil {
		t.Fatalf("inverted window should be nil, got %+v", got)
	}
}

func TestHistorySameInstantCollapses(t *testing.T) {
	now := 0.0
	s := mustState(podTopo(), func() float64 { return now })
	now = 5
	s.Apply(Contribution{FS: 0.1})
	s.Apply(Contribution{FS: 0.2})
	s.Apply(Contribution{PodNet: map[int]float64{0: 0.4}})
	if got := s.History().Len(); got != 2 {
		t.Fatalf("same-instant mutations should collapse to one epoch: len=%d", got)
	}
	sl := s.History().Window(5, 6)
	if len(sl) != 1 || math.Abs(sl[0].FS-0.3) > 1e-12 || sl[0].PodNet[0] != 0.4 {
		t.Fatalf("collapsed epoch holds wrong state: %+v", sl)
	}
}

func TestHistoryPrune(t *testing.T) {
	now := 0.0
	s := mustState(podTopo(), func() float64 { return now })
	for i := 1; i <= 10; i++ {
		now = float64(i * 10)
		s.Apply(Contribution{FS: 0.01})
	}
	s.History().Prune(55)
	if s.History().Len() >= 11 {
		t.Fatalf("prune did not drop epochs: len=%d", s.History().Len())
	}
	// Window at the prune point must still resolve.
	sl := s.History().Window(55, 65)
	if len(sl) == 0 {
		t.Fatal("window at prune point is empty")
	}
}

// Property: window slices are contiguous, ordered, and exactly cover the
// requested interval.
func TestHistoryWindowCoverageProperty(t *testing.T) {
	f := func(changes []uint8, a, b uint8) bool {
		now := 0.0
		s := mustState(podTopo(), func() float64 { return now })
		for _, c := range changes {
			now += float64(c%20 + 1)
			s.Apply(Contribution{FS: 0.001})
		}
		t0, t1 := float64(a), float64(a)+float64(b)+1
		slices := s.History().Window(t0, t1)
		if len(slices) == 0 {
			return false
		}
		if slices[0].T0 != t0 || slices[len(slices)-1].T1 != t1 {
			return false
		}
		for i := 1; i < len(slices); i++ {
			if slices[i].T0 != slices[i-1].T1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocNetOverload(t *testing.T) {
	topo := podTopo()
	s := mustState(topo, func() float64 { return 0 })
	s.Apply(Contribution{PodNet: map[int]float64{0: 1.0}}) // pod 0 at capacity
	alloc := cluster.Allocation{Nodes: []cluster.NodeID{0, 1, 16, 17}}
	// Two nodes in the congested pod (overload 1.0), two in an idle pod.
	got := s.AllocNetOverload(alloc)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("alloc overload = %v, want 0.5", got)
	}
	if s.AllocNetOverload(cluster.Allocation{}) != 0 {
		t.Fatal("empty alloc overload should be 0")
	}
}

func TestProbesReflectCongestion(t *testing.T) {
	topo := podTopo()
	s := mustState(topo, func() float64 { return 0 })
	alloc := cluster.Allocation{Nodes: []cluster.NodeID{0, 1, 2, 3}}
	calm := RunProbes(s, alloc, sim.NewSource(1).Derive("probe"))
	s.Apply(Contribution{PodNet: map[int]float64{0: 1.1}})
	hot := RunProbes(s, alloc, sim.NewSource(1).Derive("probe"))
	for i := range calm.SendWait {
		if hot.SendWait[i] <= calm.SendWait[i] {
			t.Fatal("congestion should inflate Send wait")
		}
		if hot.AllReduceWait[i] <= calm.AllReduceWait[i] {
			t.Fatal("congestion should inflate AllReduce wait")
		}
	}
	if hot.Duration() <= calm.Duration() {
		t.Fatal("probe duration should grow under congestion")
	}
}

func TestProbeDeterminism(t *testing.T) {
	s := mustState(podTopo(), func() float64 { return 0 })
	alloc := cluster.Allocation{Nodes: []cluster.NodeID{0, 5, 9}}
	a := RunProbes(s, alloc, sim.NewSource(7).Derive("p"))
	b := RunProbes(s, alloc, sim.NewSource(7).Derive("p"))
	for i := range a.SendWait {
		if a.SendWait[i] != b.SendWait[i] || a.RecvWait[i] != b.RecvWait[i] {
			t.Fatal("probes not deterministic under the same stream")
		}
	}
}

func TestStateAccessors(t *testing.T) {
	s := mustState(podTopo(), func() float64 { return 0 })
	if s.Topology().Nodes != 64 {
		t.Fatal("topology accessor wrong")
	}
	s.Apply(Contribution{Core: 1.2, FS: 1.1})
	if s.CoreLoad() != 1.2 || s.FSLoad() != 1.1 {
		t.Fatal("core/fs loads wrong")
	}
	if s.CoreOverload() <= 0 || s.FSOverload() <= 0 {
		t.Fatal("overloads should be positive beyond capacity")
	}
	s.Remove(Contribution{Core: 1.2, FS: 1.1})
	if s.CoreOverload() != 0 || s.FSOverload() != 0 {
		t.Fatal("overloads should clear")
	}
}

func TestMutatePanicsOnBadPodAndNegativeCore(t *testing.T) {
	s := mustState(podTopo(), func() float64 { return 0 })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range pod should panic")
			}
		}()
		s.Apply(Contribution{PodNet: map[int]float64{99: 0.1}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative core removal should panic")
			}
		}()
		s.Remove(Contribution{Core: 0.5})
	}()
}

func TestProbeIdleDuration(t *testing.T) {
	idle := ProbeIdleDuration()
	if idle <= 0 {
		t.Fatalf("idle duration = %v", idle)
	}
	// A calm probe's mean per-node time should sit near the idle value.
	s := mustState(podTopo(), func() float64 { return 0 })
	alloc := cluster.Allocation{Nodes: []cluster.NodeID{0, 1, 2, 3}}
	res := RunProbes(s, alloc, sim.NewSource(1).Derive("p"))
	var sum float64
	for i := range res.SendWait {
		sum += res.SendWait[i] + res.RecvWait[i] + res.AllReduceWait[i]
	}
	mean := sum / float64(len(res.SendWait))
	if mean < idle*0.7 || mean > idle*1.3 {
		t.Fatalf("calm probe mean %v far from idle %v", mean, idle)
	}
}

func TestHistoryTimeRegressionPanics(t *testing.T) {
	now := 10.0
	s := mustState(podTopo(), func() float64 { return now })
	now = 20
	s.Apply(Contribution{FS: 0.1})
	now = 5
	defer func() {
		if recover() == nil {
			t.Fatal("history must reject time going backwards")
		}
	}()
	s.Apply(Contribution{FS: 0.1})
}
