package simnet

import (
	"rush/internal/cluster"
	"rush/internal/sim"
)

// The paper runs two mpiP-instrumented probes right as each job is
// scheduled: a ring exchange passing a 100 MB token for ten iterations and
// an AllReduce over 100 MB for five iterations, then records the per-node
// time spent waiting in blocking Send, Recv, and AllReduce. Message sizes
// were picked so the probes show variance under congestion without adding
// real overhead; the constants below reproduce that regime for the
// simulated fabric.
const (
	probeSendBase      = 0.40 // seconds of Send wait on an idle network
	probeRecvBase      = 0.52 // seconds of Recv wait on an idle network
	probeAllReduceBase = 0.31 // seconds of AllReduce wait on an idle network

	// Congestion gains: how strongly each wait inflates with pod overload.
	probeSendGain      = 2.2
	probeRecvGain      = 2.6
	probeAllReduceGain = 3.1

	// Per-node multiplicative measurement noise (sigma of log).
	probeNoiseSigma = 0.06
)

// ProbeResult holds per-node blocking wait times from the two MPI probe
// benchmarks, indexed in the order of the allocation's nodes.
type ProbeResult struct {
	SendWait      []float64
	RecvWait      []float64
	AllReduceWait []float64
}

// RunProbes simulates the ring and AllReduce probes on the nodes of alloc
// under the current network state. The rng should be a stream derived for
// probe noise so that probe draws do not perturb other components.
func RunProbes(s *State, alloc cluster.Allocation, rng *sim.Source) ProbeResult {
	var res ProbeResult
	RunProbesInto(s, alloc, rng, &res)
	return res
}

// RunProbesInto is RunProbes writing into res, reusing its slices when
// they have capacity. The noise draw order (Send, Recv, AllReduce per
// node, in allocation order) is identical to RunProbes, so the two are
// interchangeable without perturbing the rng stream.
func RunProbesInto(s *State, alloc cluster.Allocation, rng *sim.Source, res *ProbeResult) {
	n := len(alloc.Nodes)
	res.SendWait = resize(res.SendWait, n)
	res.RecvWait = resize(res.RecvWait, n)
	res.AllReduceWait = resize(res.AllReduceWait, n)
	for i, node := range alloc.Nodes {
		ov := s.NetOverload(s.topo.PodOf(node))
		res.SendWait[i] = probeSendBase * (1 + probeSendGain*ov) * rng.LogNormal(0, probeNoiseSigma)
		res.RecvWait[i] = probeRecvBase * (1 + probeRecvGain*ov) * rng.LogNormal(0, probeNoiseSigma)
		res.AllReduceWait[i] = probeAllReduceBase * (1 + probeAllReduceGain*ov) * rng.LogNormal(0, probeNoiseSigma)
	}
}

// resize returns a length-n slice, reusing buf's backing array when it is
// large enough.
func resize(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// ProbeIdleDuration returns the expected per-node probe duration on an
// idle network — the calm reference that heuristic gates (e.g. the
// canary gate) compare live probe timings against.
func ProbeIdleDuration() float64 {
	return probeSendBase + probeRecvBase + probeAllReduceBase
}

// Duration returns the wall-clock cost of running both probes, i.e. the
// slowest node's total wait. The scheduler charges this time before a job
// launch when probes are enabled.
func (p ProbeResult) Duration() float64 {
	var max float64
	for i := range p.SendWait {
		t := p.SendWait[i] + p.RecvWait[i] + p.AllReduceWait[i]
		if t > max {
			max = t
		}
	}
	return max
}
