package simnet

import (
	"rush/internal/cluster"
	"rush/internal/sim"
)

// The paper runs two mpiP-instrumented probes right as each job is
// scheduled: a ring exchange passing a 100 MB token for ten iterations and
// an AllReduce over 100 MB for five iterations, then records the per-node
// time spent waiting in blocking Send, Recv, and AllReduce. Message sizes
// were picked so the probes show variance under congestion without adding
// real overhead; the constants below reproduce that regime for the
// simulated fabric.
const (
	probeSendBase      = 0.40 // seconds of Send wait on an idle network
	probeRecvBase      = 0.52 // seconds of Recv wait on an idle network
	probeAllReduceBase = 0.31 // seconds of AllReduce wait on an idle network

	// Congestion gains: how strongly each wait inflates with pod overload.
	probeSendGain      = 2.2
	probeRecvGain      = 2.6
	probeAllReduceGain = 3.1

	// Per-node multiplicative measurement noise (sigma of log).
	probeNoiseSigma = 0.06
)

// ProbeResult holds per-node blocking wait times from the two MPI probe
// benchmarks, indexed in the order of the allocation's nodes.
type ProbeResult struct {
	SendWait      []float64
	RecvWait      []float64
	AllReduceWait []float64
}

// RunProbes simulates the ring and AllReduce probes on the nodes of alloc
// under the current network state. The rng should be a stream derived for
// probe noise so that probe draws do not perturb other components.
func RunProbes(s *State, alloc cluster.Allocation, rng *sim.Source) ProbeResult {
	n := len(alloc.Nodes)
	res := ProbeResult{
		SendWait:      make([]float64, n),
		RecvWait:      make([]float64, n),
		AllReduceWait: make([]float64, n),
	}
	for i, node := range alloc.Nodes {
		ov := s.NetOverload(s.topo.PodOf(node))
		noise := func() float64 { return rng.LogNormal(0, probeNoiseSigma) }
		res.SendWait[i] = probeSendBase * (1 + probeSendGain*ov) * noise()
		res.RecvWait[i] = probeRecvBase * (1 + probeRecvGain*ov) * noise()
		res.AllReduceWait[i] = probeAllReduceBase * (1 + probeAllReduceGain*ov) * noise()
	}
	return res
}

// ProbeIdleDuration returns the expected per-node probe duration on an
// idle network — the calm reference that heuristic gates (e.g. the
// canary gate) compare live probe timings against.
func ProbeIdleDuration() float64 {
	return probeSendBase + probeRecvBase + probeAllReduceBase
}

// Duration returns the wall-clock cost of running both probes, i.e. the
// slowest node's total wait. The scheduler charges this time before a job
// launch when probes are enabled.
func (p ProbeResult) Duration() float64 {
	var max float64
	for i := range p.SendWait {
		t := p.SendWait[i] + p.RecvWait[i] + p.AllReduceWait[i]
		if t > max {
			max = t
		}
	}
	return max
}
