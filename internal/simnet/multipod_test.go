package simnet

import (
	"math"
	"reflect"
	"testing"

	"rush/internal/cluster"
	"rush/internal/sim"
)

// multiPodState builds a state over an 8-pod synthetic machine with a
// controllable clock.
func multiPodState(t *testing.T) (*State, *float64) {
	t.Helper()
	now := new(float64)
	s, err := NewState(cluster.Synthetic(4096, 512), func() float64 { return *now })
	if err != nil {
		t.Fatal(err)
	}
	return s, now
}

// TestCrossPodContributionAccounting pins the separation of the three
// resource dimensions: a contribution spanning pods lands its PodNet
// loads in exactly the named pods, its Core load on the core links, and
// its FS load on the filesystem — nothing leaks across pods.
func TestCrossPodContributionAccounting(t *testing.T) {
	s, _ := multiPodState(t)
	c := Contribution{
		PodNet: map[int]float64{0: 0.3, 3: 0.5, 7: 0.1},
		Core:   0.4,
		FS:     0.25,
	}
	s.Apply(c)
	want := map[int]float64{0: 0.3, 3: 0.5, 7: 0.1}
	for p := 0; p < s.Topology().Pods(); p++ {
		if got := s.NetLoad(p); got != want[p] {
			t.Errorf("pod %d load = %v, want %v", p, got, want[p])
		}
	}
	if s.CoreLoad() != 0.4 || s.FSLoad() != 0.25 {
		t.Errorf("core/fs = %v/%v, want 0.4/0.25", s.CoreLoad(), s.FSLoad())
	}
	// Overloads are per-dimension: pod 3 is below threshold, so its
	// contention factor is zero even though core is loaded.
	if s.NetOverload(3) != 0 {
		t.Errorf("pod 3 overload = %v, want 0 (below threshold)", s.NetOverload(3))
	}
	s.Remove(c)
	for p := 0; p < s.Topology().Pods(); p++ {
		if s.NetLoad(p) != 0 {
			t.Errorf("pod %d load = %v after removal, want 0", p, s.NetLoad(p))
		}
	}
	if s.CoreLoad() != 0 || s.FSLoad() != 0 {
		t.Errorf("core/fs nonzero after removal: %v/%v", s.CoreLoad(), s.FSLoad())
	}
}

// TestHistoryWindowSpansPods pins that window queries reproduce the
// per-pod load trajectory when different pods mutate at different
// times: each returned slice carries the full pod vector of its epoch.
func TestHistoryWindowSpansPods(t *testing.T) {
	s, now := multiPodState(t)
	*now = 10
	s.Apply(Contribution{PodNet: map[int]float64{1: 0.8}})
	*now = 20
	s.Apply(Contribution{PodNet: map[int]float64{5: 0.6}, FS: 0.3})
	*now = 30
	s.Remove(Contribution{PodNet: map[int]float64{1: 0.8}})

	sl := s.History().Window(5, 35)
	if len(sl) != 4 {
		t.Fatalf("window slice count = %d, want 4", len(sl))
	}
	type slice struct {
		t0, t1, p1, p5, fs float64
	}
	var got []slice
	for _, w := range sl {
		got = append(got, slice{w.T0, w.T1, w.PodNet[1], w.PodNet[5], w.FS})
	}
	want := []slice{
		{5, 10, 0, 0, 0},
		{10, 20, 0.8, 0, 0},
		{20, 30, 0.8, 0.6, 0.3},
		{30, 35, 0, 0.6, 0.3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("window = %+v, want %+v", got, want)
	}
}

// TestChangeDirtinessIsOverloadLevel pins the fast path's contract: a
// Change names a pod (or global) exactly when its contention factor
// moved, not merely its raw load. Below-threshold churn is invisible to
// change subscribers while remaining fully recorded in the history and
// the raw version counters.
func TestChangeDirtinessIsOverloadLevel(t *testing.T) {
	s, now := multiPodState(t)
	var last *Change
	s.SubscribeChanges(func(ch Change) {
		cp := ch
		cp.Pods = append([]int(nil), ch.Pods...)
		last = &cp
	})

	// Below threshold: raw load moves, no contention factor does.
	*now = 1
	s.Apply(Contribution{PodNet: map[int]float64{2: 0.5}, Core: 0.1, FS: 0.2})
	if last == nil || !last.Empty() {
		t.Fatalf("below-threshold change = %+v, want empty", last)
	}
	if s.PodVersion(2) != 1 || s.CoreVersion() != 1 || s.FSVersion() != 1 {
		t.Fatalf("raw versions must still bump: pod2=%d core=%d fs=%d",
			s.PodVersion(2), s.CoreVersion(), s.FSVersion())
	}
	if s.History().Len() < 2 {
		t.Fatal("history must record below-threshold epochs")
	}

	// Crossing the threshold dirties exactly the crossing pod.
	s.Apply(Contribution{PodNet: map[int]float64{2: 0.4, 6: 0.1}})
	if last == nil || !reflect.DeepEqual(last.Pods, []int{2}) || last.Core || last.FS {
		t.Fatalf("threshold crossing change = %+v, want pods [2] only", last)
	}

	// Movement entirely above the threshold is always dirty (the factor
	// changes continuously there).
	s.Apply(Contribution{PodNet: map[int]float64{2: 0.05}})
	if last == nil || !reflect.DeepEqual(last.Pods, []int{2}) {
		t.Fatalf("above-threshold change = %+v, want pods [2]", last)
	}

	// A no-op contribution is an empty change, not a missing one.
	last = nil
	s.Apply(Contribution{})
	if last == nil || !last.Empty() {
		t.Fatalf("no-op change = %+v, want delivered and empty", last)
	}

	// Globals dirty independently of pods.
	s.Apply(Contribution{Core: 0.7, FS: 0.6})
	if last == nil || len(last.Pods) != 0 || !last.Core || !last.FS {
		t.Fatalf("global change = %+v, want core+fs only", last)
	}
}

// TestIncrementalMatchesFullRecomputation is the property test for the
// dirty-pod protocol: over a long random mutation sequence on a
// multi-pod machine, maintaining per-pod contention factors only from
// Change notifications must track a full recomputation from raw state
// exactly — same values, bit for bit, and no missed transitions.
func TestIncrementalMatchesFullRecomputation(t *testing.T) {
	s, now := multiPodState(t)
	pods := s.Topology().Pods()
	rng := sim.NewSource(7)

	// Incrementally maintained factors, updated only on notification.
	inc := make([]float64, pods)
	var incCore, incFS float64
	s.SubscribeChanges(func(ch Change) {
		for _, p := range ch.Pods {
			inc[p] = s.NetOverload(p)
		}
		if ch.Core {
			incCore = s.CoreOverload()
		}
		if ch.FS {
			incFS = s.FSOverload()
		}
	})

	var applied []Contribution
	for step := 0; step < 2000; step++ {
		*now = float64(step)
		if len(applied) > 0 && rng.Bool(0.4) {
			i := rng.Intn(len(applied))
			s.Remove(applied[i])
			applied[i] = applied[len(applied)-1]
			applied = applied[:len(applied)-1]
		} else {
			c := Contribution{PodNet: map[int]float64{}}
			for k := 0; k < 1+rng.Intn(3); k++ {
				c.PodNet[rng.Intn(pods)] += rng.Uniform(0, 0.5)
			}
			if rng.Bool(0.3) {
				c.Core = rng.Uniform(0, 0.3)
			}
			if rng.Bool(0.3) {
				c.FS = rng.Uniform(0, 0.4)
			}
			s.Apply(c)
			applied = append(applied, c)
		}
		// Full recomputation from raw loads.
		for p := 0; p < pods; p++ {
			if full := Overload(s.NetLoad(p)); full != inc[p] {
				t.Fatalf("step %d pod %d: incremental %v != full %v", step, p, inc[p], full)
			}
		}
		if full := Overload(s.CoreLoad()); full != incCore {
			t.Fatalf("step %d core: incremental %v != full %v", step, incCore, full)
		}
		if full := Overload(s.FSLoad()); full != incFS {
			t.Fatalf("step %d fs: incremental %v != full %v", step, incFS, full)
		}
	}
	if math.IsNaN(incCore) || math.IsNaN(incFS) {
		t.Fatal("factors went NaN")
	}
}

// TestReentrantMutationPanics pins the subscriber contract: mutating the
// state from inside a callback would corrupt the notification scratch,
// so it must fail loudly.
func TestReentrantMutationPanics(t *testing.T) {
	s, _ := multiPodState(t)
	s.SubscribeChanges(func(Change) {
		s.Apply(Contribution{FS: 0.1})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("re-entrant Apply must panic")
		}
	}()
	s.Apply(Contribution{FS: 0.2})
}
