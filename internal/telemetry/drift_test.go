package telemetry

import (
	"math"
	"testing"

	"rush/internal/cluster"
)

// doubler is a drift model that doubles every counter at or after a
// start tick.
type doubler struct{ startTick int64 }

func (d doubler) Perturb(ci int, node cluster.NodeID, tick int64, v float64) float64 {
	if tick >= d.startTick {
		return 2 * v
	}
	return v
}

func TestSamplerDriftPerturbsValues(t *testing.T) {
	st, clean, now := newEnv()
	_, drifted, _ := newEnv()
	drifted.SetDrift(doubler{startTick: 0})
	*now = WindowSeconds
	nodes := []cluster.NodeID{0, 1, 2, 3}

	a := clean.AggregateWindow(st.History(), nodes, *now)
	b := drifted.AggregateWindow(st.History(), nodes, *now)
	diff := false
	for ci := range a.Mean {
		if math.IsNaN(a.Mean[ci]) {
			continue
		}
		if a.Mean[ci] != 0 && math.Abs(b.Mean[ci]-2*a.Mean[ci]) > 1e-9*math.Abs(a.Mean[ci]) {
			t.Fatalf("counter %d: drifted mean %v, want doubled %v", ci, b.Mean[ci], 2*a.Mean[ci])
		}
		if a.Mean[ci] != 0 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("window had no nonzero counters to compare")
	}
}

func TestSamplerNilDriftIsIdentity(t *testing.T) {
	st, s1, now := newEnv()
	_, s2, _ := newEnv()
	s2.SetDrift(nil)
	*now = WindowSeconds
	nodes := []cluster.NodeID{0, 1}
	a := s1.AggregateWindow(st.History(), nodes, *now)
	b := s2.AggregateWindow(st.History(), nodes, *now)
	for ci := range a.Mean {
		if a.Mean[ci] != b.Mean[ci] && !(math.IsNaN(a.Mean[ci]) && math.IsNaN(b.Mean[ci])) {
			t.Fatalf("counter %d: nil drift changed mean %v -> %v", ci, a.Mean[ci], b.Mean[ci])
		}
	}
}

func TestSamplerSetDriftFlushesCache(t *testing.T) {
	st, s, now := newEnv()
	*now = WindowSeconds
	nodes := []cluster.NodeID{0}
	before := s.AggregateWindow(st.History(), nodes, *now) // populates the row cache
	s.SetDrift(doubler{startTick: 0})
	after := s.AggregateWindow(st.History(), nodes, *now)
	changed := false
	for ci := range before.Mean {
		if before.Mean[ci] != 0 && !math.IsNaN(before.Mean[ci]) && after.Mean[ci] != before.Mean[ci] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("cached rows survived SetDrift: post-drift window identical to pre-drift")
	}
}

func TestWindowAggInvalidatesOnDriftChange(t *testing.T) {
	st, s, now := newEnv()
	nodes := []cluster.NodeID{0, 1, 2, 3}
	w := s.NewWindowAgg(st.History(), nodes)
	*now = WindowSeconds
	before := w.Aggregate(*now) // fills the partials cache
	s.SetDrift(doubler{startTick: 0})
	after := w.Aggregate(*now)
	direct := s.AggregateWindow(st.History(), nodes, *now)
	for ci := range after.Mean {
		if after.Mean[ci] != direct.Mean[ci] && !(math.IsNaN(after.Mean[ci]) && math.IsNaN(direct.Mean[ci])) {
			t.Fatalf("counter %d: windowagg %v != direct %v after drift swap", ci, after.Mean[ci], direct.Mean[ci])
		}
	}
	changed := false
	for ci := range before.Mean {
		if before.Mean[ci] != 0 && !math.IsNaN(before.Mean[ci]) && after.Mean[ci] != before.Mean[ci] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("windowagg partials survived the drift model change")
	}
}
