// Package telemetry reproduces the monitoring substrate the paper builds
// on: LDMS samplers writing per-node counters from three tables —
// sysclassib (InfiniBand endpoint counters), opa_info (Omni-Path switch
// counters), and lustre_client (Lustre client metrics) — plus the
// min/max/mean aggregation over the five minutes before each job that
// turns raw samples into model features.
//
// Counter values are synthesized from the simulator's load history: each
// counter is an affine function of a latent signal (pod network load or
// overload, filesystem load or overload) with per-sample multiplicative
// noise; error counters carry no signal at all, giving feature selection
// something real to eliminate.
package telemetry

// Src identifies which latent simulator signal drives a counter.
type Src int

const (
	// SrcNet counters scale with raw pod network load (traffic volume).
	SrcNet Src = iota
	// SrcNetOverload counters scale with pod network contention (queue
	// waits, congestion notifications) — nonlinear in load.
	SrcNetOverload
	// SrcFS counters scale with raw filesystem load (bytes, op counts).
	SrcFS
	// SrcFSOverload counters scale with filesystem contention.
	SrcFSOverload
	// SrcNoise counters are pure measurement noise (error counters that
	// stay near zero on a healthy machine).
	SrcNoise
)

// Counter describes one monitored quantity.
type Counter struct {
	// Table is the LDMS table the counter belongs to: "sysclassib",
	// "opa_info", or "lustre_client".
	Table string
	// Name is the counter name within its table.
	Name string
	// Src is the latent signal that drives the counter.
	Src Src
	// Base is the counter's idle-machine level.
	Base float64
	// Gain scales the latent signal into counter units.
	Gain float64
	// Noise is the relative (multiplicative) noise sigma per sample.
	Noise float64
}

// Table sizes from Table I of the paper.
const (
	NumSysclassib   = 22
	NumOpaInfo      = 34
	NumLustreClient = 34
	// NumCounters is the total number of per-node counters.
	NumCounters = NumSysclassib + NumOpaInfo + NumLustreClient
)

// Schema returns the full counter schema: 22 sysclassib + 34 opa_info +
// 34 lustre_client counters, in a fixed order that defines the dataset's
// column layout.
func Schema() []Counter {
	var cs []Counter
	add := func(table, name string, src Src, base, gain, noise float64) {
		cs = append(cs, Counter{Table: table, Name: name, Src: src, Base: base, Gain: gain, Noise: noise})
	}

	// sysclassib: InfiniBand endpoint counters (rates per sample period).
	ib := func(name string, src Src, base, gain, noise float64) {
		add("sysclassib", name, src, base, gain, noise)
	}
	ib("port_xmit_data", SrcNet, 120, 900, 0.05)
	ib("port_rcv_data", SrcNet, 118, 880, 0.05)
	ib("port_xmit_pkts", SrcNet, 300, 2100, 0.06)
	ib("port_rcv_pkts", SrcNet, 295, 2050, 0.06)
	ib("port_xmit_wait", SrcNetOverload, 2, 4500, 0.10)
	ib("unicast_xmit_pkts", SrcNet, 260, 1900, 0.06)
	ib("unicast_rcv_pkts", SrcNet, 255, 1850, 0.06)
	ib("multicast_xmit_pkts", SrcNet, 12, 90, 0.15)
	ib("multicast_rcv_pkts", SrcNet, 12, 85, 0.15)
	ib("port_xmit_discards", SrcNetOverload, 0.1, 45, 0.30)
	ib("port_rcv_errors", SrcNoise, 0.05, 0, 0.50)
	ib("symbol_error", SrcNoise, 0.02, 0, 0.60)
	ib("link_downed", SrcNoise, 0.001, 0, 0.80)
	ib("link_error_recovery", SrcNoise, 0.002, 0, 0.80)
	ib("port_rcv_remote_physical_errors", SrcNoise, 0.01, 0, 0.70)
	ib("port_rcv_switch_relay_errors", SrcNoise, 0.01, 0, 0.70)
	ib("port_xmit_constraint_errors", SrcNoise, 0.005, 0, 0.70)
	ib("port_rcv_constraint_errors", SrcNoise, 0.005, 0, 0.70)
	ib("local_link_integrity_errors", SrcNoise, 0.002, 0, 0.80)
	ib("excessive_buffer_overrun_errors", SrcNetOverload, 0.05, 25, 0.35)
	ib("VL15_dropped", SrcNetOverload, 0.02, 12, 0.40)
	ib("port_rcv_packets_err", SrcNoise, 0.03, 0, 0.60)

	// opa_info: Omni-Path switch counters.
	opa := func(name string, src Src, base, gain, noise float64) {
		add("opa_info", name, src, base, gain, noise)
	}
	opa("tx_words", SrcNet, 140, 1000, 0.05)
	opa("rx_words", SrcNet, 138, 990, 0.05)
	opa("tx_pkts", SrcNet, 310, 2200, 0.06)
	opa("rx_pkts", SrcNet, 305, 2150, 0.06)
	opa("mcast_tx_pkts", SrcNet, 10, 70, 0.15)
	opa("mcast_rx_pkts", SrcNet, 10, 68, 0.15)
	opa("xmit_wait", SrcNetOverload, 3, 5200, 0.10)
	opa("congestion_discards", SrcNetOverload, 0.1, 60, 0.30)
	opa("rcv_fecn", SrcNetOverload, 0.5, 800, 0.15)
	opa("rcv_becn", SrcNetOverload, 0.4, 750, 0.15)
	opa("mark_fecn", SrcNetOverload, 0.3, 700, 0.15)
	opa("link_quality_indicator", SrcNoise, 5, 0, 0.02)
	opa("bubble_errors", SrcNoise, 0.02, 0, 0.60)
	opa("rcv_errors", SrcNoise, 0.03, 0, 0.60)
	opa("xmit_discards", SrcNetOverload, 0.1, 40, 0.30)
	opa("link_downed", SrcNoise, 0.001, 0, 0.80)
	opa("uncorrectable_errors", SrcNoise, 0.001, 0, 0.80)
	opa("fm_config_errors", SrcNoise, 0.001, 0, 0.80)
	for vl := 0; vl < 8; vl++ {
		// Per-virtual-lane traffic: VL0 carries the bulk, higher lanes
		// progressively less.
		share := 1.0 / float64(1+vl*2)
		opa(vlName("tx_vl", vl), SrcNet, 40*share, 600*share, 0.08)
	}
	for vl := 0; vl < 8; vl++ {
		share := 1.0 / float64(1+vl*2)
		opa(vlName("rx_vl", vl), SrcNet, 39*share, 590*share, 0.08)
	}

	// lustre_client: Lustre client metrics.
	lc := func(name string, src Src, base, gain, noise float64) {
		add("lustre_client", name, src, base, gain, noise)
	}
	lc("read_bytes", SrcFS, 50, 1500, 0.08)
	lc("write_bytes", SrcFS, 60, 1800, 0.08)
	lc("read_calls", SrcFS, 20, 500, 0.08)
	lc("write_calls", SrcFS, 25, 550, 0.08)
	lc("brw_read", SrcFS, 15, 420, 0.10)
	lc("brw_write", SrcFS, 18, 460, 0.10)
	lc("page_read", SrcFS, 200, 3800, 0.08)
	lc("page_write", SrcFS, 220, 4100, 0.08)
	lc("dirty_pages_hits", SrcFS, 90, 1100, 0.12)
	lc("dirty_pages_misses", SrcFSOverload, 4, 900, 0.15)
	lc("open", SrcFS, 8, 120, 0.12)
	lc("close", SrcFS, 8, 118, 0.12)
	lc("seek", SrcFS, 6, 80, 0.15)
	lc("fsync", SrcFSOverload, 0.5, 140, 0.20)
	lc("setattr", SrcFS, 1.5, 25, 0.20)
	lc("getattr", SrcFS, 12, 160, 0.12)
	lc("statfs", SrcNoise, 0.8, 0, 0.30)
	lc("ioctl", SrcNoise, 0.5, 0, 0.30)
	lc("mmap", SrcFS, 1.2, 20, 0.25)
	lc("inode_permission", SrcFS, 30, 300, 0.12)
	lc("truncate", SrcFS, 0.6, 12, 0.30)
	lc("flock", SrcNoise, 0.2, 0, 0.40)
	lc("getxattr", SrcFS, 2.5, 30, 0.20)
	lc("setxattr", SrcNoise, 0.1, 0, 0.40)
	lc("listxattr", SrcNoise, 0.1, 0, 0.40)
	lc("removexattr", SrcNoise, 0.05, 0, 0.50)
	lc("unlink", SrcFS, 0.7, 14, 0.30)
	lc("mkdir", SrcNoise, 0.3, 0, 0.40)
	lc("rmdir", SrcNoise, 0.2, 0, 0.40)
	lc("rename", SrcFS, 0.4, 10, 0.30)
	lc("create", SrcFS, 1.0, 22, 0.25)
	lc("lookup", SrcFS, 18, 210, 0.12)
	lc("link", SrcNoise, 0.1, 0, 0.50)
	lc("readdir", SrcFS, 3.0, 45, 0.20)

	if len(cs) != NumCounters {
		panic("telemetry: schema size drifted from Table I")
	}
	return cs
}

func vlName(prefix string, vl int) string {
	return prefix + string(rune('0'+vl))
}
