package telemetry

import (
	"fmt"
	"math"

	"rush/internal/cluster"
	"rush/internal/sim"
	"rush/internal/simnet"
)

// SamplePeriod is the LDMS sampling cadence in seconds. Ticks are aligned
// to multiples of the period globally, so the same instant always yields
// the same sample regardless of which window asks for it.
const SamplePeriod = 15.0

// WindowSeconds is the aggregation window used throughout the paper: the
// five minutes of counter data preceding a job's start.
const WindowSeconds = 300.0

// maxScopeNodes caps how many nodes an aggregation walks. The paper's
// "all nodes" scope covers the whole machine; statistically a fixed-size
// deterministic stratified subset preserves the min/mean/max aggregates
// while keeping the simulated collection pipeline tractable. Job-scoped
// aggregations are far below the cap and are never subsampled.
const maxScopeNodes = 64

// FaultModel lets a fault injector corrupt the counter stream the
// sampler synthesizes, reproducing the gaps and stalls of a real LDMS
// deployment. Implementations must be pure functions of their arguments
// (and their own seed) so that overlapping windows agree on shared
// samples and runs stay reproducible.
type FaultModel interface {
	// Dropped reports whether the sample of the given table on node at
	// tick was lost in transit. A dropped table contributes NaN to every
	// aggregate of its counters at that tick.
	Dropped(table string, node cluster.NodeID, tick int64) bool
	// SampleTick returns the tick whose value is actually reported at
	// tick: normally tick itself, or an earlier tick while the node's
	// counters are frozen (a stalled sampler keeps resending stale
	// values). The result must never exceed tick.
	SampleTick(node cluster.NodeID, tick int64) int64
}

// DriftModel lets a fault injector shift the latent distributions the
// sampler synthesizes — the slow calibration drift, firmware-update
// regime changes, and sensor recalibrations a months-old trained model
// must survive. Implementations must be pure functions of their
// arguments (and their own seed): cached rows stay valid under a fixed
// drift model, overlapping windows agree on shared samples, and runs
// remain reproducible.
type DriftModel interface {
	// Perturb returns the drifted value of counter ci on node given the
	// healthy value v. tick is the effective sample tick (the instant
	// the value reflects), so frozen counters keep repeating their
	// pre-freeze, pre-drift value exactly as a stuck collector would.
	Perturb(ci int, node cluster.NodeID, tick int64, v float64) float64
}

// Sampler synthesizes counter samples from the simulator's load history.
//
// Aggregation queries are memoized: each computed (node, tick) sample row
// is cached, so overlapping and sliding windows recompute only the rows
// they have not seen (see rowFor for the exact reuse conditions). The
// cache relies on windows never extending beyond the current simulated
// instant — load history only ever mutates at the present, so every
// sample inside a past window is final. Callers must therefore pass
// t1 <= now; sampling the future would be meaningless anyway.
type Sampler struct {
	topo   cluster.Topology
	schema []Counter
	rng    *sim.Source
	faults FaultModel
	drift  DriftModel
	tables []string

	// Row cache (see rowFor): rowIdx maps (node, tick) to an index into
	// the rows arena. cacheHist guards against a sampler being pointed at
	// a different history between queries.
	cacheHist *simnet.History
	rowIdx    map[rowKey]int32
	rows      []cachedRow
	scratch   cachedRow

	// Reusable scratch for the allocation-free aggregation path.
	capBuf    []cluster.NodeID
	sliceBuf  []simnet.Slice
	tickSum   []float64
	tickCount []int
	counts    []int
}

type rowKey struct {
	node cluster.NodeID
	tick int64
}

// cachedRow is one (node, tick) sample row: every counter's value at that
// tick, NaN where the table's sample was dropped. effT is the instant
// whose latent loads the values reflect — the tick's own time normally,
// an earlier one while the node's counters are frozen.
type cachedRow struct {
	node cluster.NodeID
	tick int64
	effT float64
	vals [NumCounters]float64
}

// NewSampler returns a sampler over topo whose noise derives from rng
// (use a dedicated child stream, e.g. root.Derive("telemetry")).
func NewSampler(topo cluster.Topology, rng *sim.Source) *Sampler {
	s := &Sampler{topo: topo, schema: Schema(), rng: rng, rowIdx: map[rowKey]int32{}}
	for i := range s.schema {
		if len(s.tables) == 0 || s.tables[len(s.tables)-1] != s.schema[i].Table {
			s.tables = append(s.tables, s.schema[i].Table)
		}
	}
	n := len(s.schema)
	s.tickSum = make([]float64, n)
	s.tickCount = make([]int, n)
	s.counts = make([]int, n)
	return s
}

// SetFaults installs a fault model (nil restores the healthy stream). The
// row cache is flushed: cached rows are only valid under the fault model
// that produced them.
func (s *Sampler) SetFaults(f FaultModel) {
	s.faults = f
	s.flushCache()
}

// SetDrift installs a drift model (nil restores the calibrated stream).
// The row cache is flushed, mirroring SetFaults: cached rows are only
// valid under the drift model that produced them.
func (s *Sampler) SetDrift(d DriftModel) {
	s.drift = d
	s.flushCache()
}

func (s *Sampler) flushCache() {
	clear(s.rowIdx)
	s.rows = s.rows[:0]
}

// Prune evicts cached sample rows for ticks before t. Call it alongside
// History.Prune with the same cutoff; as with the history, t must trail
// the oldest window any future query will ask for.
func (s *Sampler) Prune(t float64) {
	if len(s.rows) == 0 {
		return
	}
	dst := 0
	for i := range s.rows {
		r := &s.rows[i]
		if float64(r.tick)*SamplePeriod < t {
			delete(s.rowIdx, rowKey{node: r.node, tick: r.tick})
			continue
		}
		if dst != i {
			s.rows[dst] = s.rows[i]
			s.rowIdx[rowKey{node: r.node, tick: r.tick}] = int32(dst)
		}
		dst++
	}
	s.rows = s.rows[:dst]
}

// CachedRows returns the number of (node, tick) sample rows currently
// memoized (observability and test hook).
func (s *Sampler) CachedRows() int { return len(s.rows) }

// Schema returns the sampler's counter schema.
func (s *Sampler) Schema() []Counter { return s.schema }

// Aggregates holds min/mean/max per counter, aggregated over every
// (node, sample tick) pair in a window, in schema order. Under an active
// fault model a counter whose every sample was dropped aggregates to NaN
// in all three slices; downstream feature consumers must tolerate that.
type Aggregates struct {
	Min  []float64
	Mean []float64
	Max  []float64
}

// Clone returns a deep copy of the aggregates with freshly allocated
// slices. Snapshot publishers (internal/sched.Snapshot, the serving
// daemon's ingest path) freeze a window with it so the immutable
// snapshot cannot alias a buffer the sampler keeps rewriting.
func (a Aggregates) Clone() Aggregates {
	return Aggregates{
		Min:  append([]float64(nil), a.Min...),
		Mean: append([]float64(nil), a.Mean...),
		Max:  append([]float64(nil), a.Max...),
	}
}

// MissingFraction returns the share of counters whose aggregates are NaN
// (every sample in the window was dropped).
func (a Aggregates) MissingFraction() float64 {
	if len(a.Mean) == 0 {
		return 0
	}
	missing := 0
	for _, v := range a.Mean {
		if math.IsNaN(v) {
			missing++
		}
	}
	return float64(missing) / float64(len(a.Mean))
}

// sampleValue computes one counter's value on one node at one tick given
// the latent loads. Noise is a deterministic hash of (counter, node,
// tick), so overlapping windows agree on shared samples.
func (s *Sampler) sampleValue(c *Counter, ci int, node cluster.NodeID, tick int64, netLoad, fsLoad float64) float64 {
	var signal float64
	switch c.Src {
	case SrcNet:
		signal = netLoad
	case SrcNetOverload:
		signal = simnet.Overload(netLoad)
	case SrcFS:
		signal = fsLoad
	case SrcFSOverload:
		signal = simnet.Overload(fsLoad)
	case SrcNoise:
		signal = 0
	default:
		panic(fmt.Sprintf("telemetry: unknown source %d", c.Src))
	}
	// Uniform multiplicative noise with the configured sigma. Uniform on
	// [-sqrt(3)sigma, +sqrt(3)sigma] matches the variance of a normal at
	// a fraction of the cost, and counters aren't Gaussian anyway.
	u := 2*s.rng.HashUnit(uint64(ci)+1, uint64(node)+0x9e37, uint64(tick)+0x7f4a) - 1
	v := (c.Base + c.Gain*signal) * (1 + c.Noise*u*math.Sqrt(3))
	if v < 0 {
		v = 0
	}
	return v
}

// computeRow fills r with the full sample row of (node, tick): every
// counter's value (NaN for dropped tables) plus the effective instant the
// values reflect. tickT is the tick's (possibly window-clamped) sample
// time and tickNet/tickFS the latent loads at it, hoisted by the caller
// so a tick's loads are resolved once per tick rather than once per node.
func (s *Sampler) computeRow(slices []simnet.Slice, node cluster.NodeID, tick int64, tickT float64, tickNet []float64, tickFS float64, r *cachedRow) {
	effTick, effNet, effFS, effT := tick, tickNet, tickFS, tickT
	if s.faults != nil {
		// Frozen counters repeat an earlier tick's sample: the value
		// reflects the loads at the freeze instant (clamped to the
		// history the window fetched) and its noise stays constant.
		if et := s.faults.SampleTick(node, tick); et < tick {
			effTick = et
			effT = float64(et) * SamplePeriod
			effNet, effFS = loadsAt(slices, effT)
		}
	}
	pod := s.topo.PodOf(node)
	var net float64
	if pod < len(effNet) {
		net = effNet[pod]
	}
	r.node, r.tick, r.effT = node, tick, effT
	lastTable, lastDropped := "", false
	for ci := range s.schema {
		if s.faults != nil {
			// Whole tables drop together (one lost LDMS message per
			// table); memoize across the contiguous block.
			if tb := s.schema[ci].Table; tb != lastTable {
				lastTable = tb
				lastDropped = s.faults.Dropped(tb, node, tick)
			}
			if lastDropped {
				r.vals[ci] = math.NaN()
				continue
			}
		}
		v := s.sampleValue(&s.schema[ci], ci, node, effTick, net, effFS)
		if s.drift != nil {
			// Drift applies at the effective tick: a frozen counter keeps
			// repeating the value (and drift state) of its freeze instant.
			v = s.drift.Perturb(ci, node, effTick, v)
		}
		r.vals[ci] = v
	}
}

// rowFor returns the sample row of (node, tick) for a window starting at
// t0, from the cache when possible. A cached row is reusable only when
// its effective instant lies inside the querying window (effT >= t0):
// frozen rows whose source instant precedes the window are computed from
// loads clamped to the window's first slice, which makes their values
// window-dependent — those are recomputed per query and never poison the
// cache. Rows are cacheable under the sampler-wide contract that windows
// end at or before the current simulated instant, which makes every
// in-window load epoch final.
func (s *Sampler) rowFor(hist *simnet.History, slices []simnet.Slice, t0, tickT float64, tickNet []float64, tickFS float64, node cluster.NodeID, tick int64) *cachedRow {
	if s.cacheHist != hist {
		s.flushCache()
		s.cacheHist = hist
	}
	key := rowKey{node: node, tick: tick}
	if idx, ok := s.rowIdx[key]; ok {
		if r := &s.rows[idx]; r.effT >= t0 {
			return r
		}
		s.computeRow(slices, node, tick, tickT, tickNet, tickFS, &s.scratch)
		return &s.scratch
	}
	s.computeRow(slices, node, tick, tickT, tickNet, tickFS, &s.scratch)
	if s.scratch.effT >= t0 {
		s.rows = append(s.rows, s.scratch)
		s.rowIdx[key] = int32(len(s.rows) - 1)
		return &s.rows[len(s.rows)-1]
	}
	return &s.scratch
}

// AggregateWindow computes min/mean/max of every counter over the window
// [t1-WindowSeconds, t1) across the given nodes, reading latent loads
// from hist. An empty node list or a window with no aligned ticks falls
// back to a single sample at the window end so callers always get a
// complete feature vector. t1 must not exceed the current simulated
// instant (see Sampler).
func (s *Sampler) AggregateWindow(hist *simnet.History, nodes []cluster.NodeID, t1 float64) Aggregates {
	return s.AggregateRange(hist, nodes, t1-WindowSeconds, t1)
}

// AggregateRange is AggregateWindow over an explicit [t0, t1) interval.
func (s *Sampler) AggregateRange(hist *simnet.History, nodes []cluster.NodeID, t0, t1 float64) Aggregates {
	var agg Aggregates
	s.AggregateRangeInto(hist, nodes, t0, t1, &agg)
	return agg
}

// AggregateWindowInto is AggregateWindow writing into out, reusing its
// slices. Together with the row cache this makes steady-state window
// aggregation allocation-free.
func (s *Sampler) AggregateWindowInto(hist *simnet.History, nodes []cluster.NodeID, t1 float64, out *Aggregates) {
	s.AggregateRangeInto(hist, nodes, t1-WindowSeconds, t1, out)
}

// AggregateRangeInto is AggregateRange writing into out, reusing its
// slices (the fast path: cached rows, no allocations in steady state).
func (s *Sampler) AggregateRangeInto(hist *simnet.History, nodes []cluster.NodeID, t0, t1 float64, out *Aggregates) {
	s.aggregateInto(hist, nodes, t0, t1, out, true)
}

// AggregateRangeRef is AggregateRange bypassing the row cache: every
// sample is recomputed from the load history. It exists as the reference
// implementation for the differential tests and benchmarks; the fast path
// must be bit-identical to it.
func (s *Sampler) AggregateRangeRef(hist *simnet.History, nodes []cluster.NodeID, t0, t1 float64) Aggregates {
	agg := Aggregates{
		Min:  make([]float64, len(s.schema)),
		Mean: make([]float64, len(s.schema)),
		Max:  make([]float64, len(s.schema)),
	}
	s.aggregateInto(hist, nodes, t0, t1, &agg, false)
	return agg
}

// aggregateInto is the shared aggregation loop. The mean is accumulated
// in a two-level fold — node-major partial sums per tick, folded into the
// running total at the end of each tick — so that the sliding-window
// aggregator (WindowAgg), which caches per-tick partials, combines to
// bit-identical results. Any change to the fold order here must be
// mirrored in WindowAgg.AggregateInto.
func (s *Sampler) aggregateInto(hist *simnet.History, nodes []cluster.NodeID, t0, t1 float64, out *Aggregates, useCache bool) {
	n := len(s.schema)
	out.Min = resizeFloats(out.Min, n)
	out.Mean = resizeFloats(out.Mean, n)
	out.Max = resizeFloats(out.Max, n)
	for i := 0; i < n; i++ {
		out.Min[i] = math.Inf(1)
		out.Mean[i] = 0
		out.Max[i] = math.Inf(-1)
	}
	nodes = s.capNodesInto(nodes)
	if len(nodes) == 0 {
		return
	}

	first, last := tickBounds(t0, t1)
	fallback := false
	if last < first {
		// A window shorter than one period still yields one sample (the
		// tick containing t0) so feature vectors are never empty.
		first = int64(math.Floor(t0 / SamplePeriod))
		last = first
		fallback = true
	}
	s.sliceBuf = hist.WindowInto(t0, t1, s.sliceBuf[:0])
	counts := s.counts
	for i := 0; i < n; i++ {
		counts[i] = 0
	}
	for tick := first; tick <= last; tick++ {
		tickT := float64(tick) * SamplePeriod
		if tickT < t0 {
			tickT = t0 // fallback tick of a sub-period window
		}
		tickNet, tickFS := loadsAt(s.sliceBuf, tickT)
		for i := 0; i < n; i++ {
			s.tickSum[i] = 0
			s.tickCount[i] = 0
		}
		for _, node := range nodes {
			var row *cachedRow
			if useCache && !fallback {
				row = s.rowFor(hist, s.sliceBuf, t0, tickT, tickNet, tickFS, node, tick)
			} else {
				s.computeRow(s.sliceBuf, node, tick, tickT, tickNet, tickFS, &s.scratch)
				row = &s.scratch
			}
			for ci := 0; ci < n; ci++ {
				v := row.vals[ci]
				if math.IsNaN(v) {
					continue
				}
				if v < out.Min[ci] {
					out.Min[ci] = v
				}
				if v > out.Max[ci] {
					out.Max[ci] = v
				}
				s.tickSum[ci] += v
				s.tickCount[ci]++
			}
		}
		for ci := 0; ci < n; ci++ {
			out.Mean[ci] += s.tickSum[ci]
			counts[ci] += s.tickCount[ci]
		}
	}
	for ci := 0; ci < n; ci++ {
		if counts[ci] == 0 {
			// Every sample of this counter was dropped: the feature is
			// missing, not zero.
			out.Min[ci], out.Mean[ci], out.Max[ci] = math.NaN(), math.NaN(), math.NaN()
			continue
		}
		out.Mean[ci] /= float64(counts[ci])
	}
}

// FreshnessAge reports how stale the counter stream feeding a decision at
// time t1 is: the age, in seconds before t1, of the newest sample that
// actually arrived for the given nodes within the standard aggregation
// window — where a frozen sample counts with the age of the instant its
// value reflects. With no fault model installed the age is at most one
// sample period. +Inf means no sample in the window arrived at all. It
// performs no heap allocations.
func (s *Sampler) FreshnessAge(nodes []cluster.NodeID, t1 float64) float64 {
	nodes = s.capNodesInto(nodes)
	if len(nodes) == 0 {
		return math.Inf(1)
	}
	first, last := tickBounds(t1-WindowSeconds, t1)
	if last < first {
		first = int64(math.Floor((t1 - WindowSeconds) / SamplePeriod))
		last = first
	}
	if s.faults == nil {
		return t1 - float64(last)*SamplePeriod
	}
	newest := math.Inf(-1)
	for tick := first; tick <= last; tick++ {
		for _, node := range nodes {
			eff := s.faults.SampleTick(node, tick)
			for _, tb := range s.tables {
				if s.faults.Dropped(tb, node, tick) {
					continue
				}
				if tm := float64(eff) * SamplePeriod; tm > newest {
					newest = tm
				}
				break // all tables share the node's freeze state
			}
		}
	}
	if math.IsInf(newest, -1) {
		return math.Inf(1)
	}
	return t1 - newest
}

// tickBounds returns the first and last global tick indices whose sample
// times fall in [t0, t1); last < first means the window is shorter than
// one period and callers should fall back to the tick containing t0.
func tickBounds(t0, t1 float64) (first, last int64) {
	first = int64(math.Ceil(t0 / SamplePeriod))
	last = int64(math.Ceil(t1/SamplePeriod)) - 1
	return first, last
}

// alignedTicks returns the global tick indices whose sample times fall in
// [t0, t1). A window shorter than one period still yields one tick (the
// one containing t0) so feature vectors are never empty.
func alignedTicks(t0, t1 float64) []int64 {
	first, last := tickBounds(t0, t1)
	if last < first {
		return []int64{int64(math.Floor(t0 / SamplePeriod))}
	}
	ticks := make([]int64, 0, last-first+1)
	for k := first; k <= last; k++ {
		ticks = append(ticks, k)
	}
	return ticks
}

// loadsAt finds the latent loads at time t within pre-fetched slices.
// Times outside the covered range clamp to the nearest slice.
func loadsAt(slices []simnet.Slice, t float64) ([]float64, float64) {
	if len(slices) == 0 {
		return nil, 0
	}
	for i := range slices {
		if t >= slices[i].T0 && t < slices[i].T1 {
			return slices[i].PodNet, slices[i].FS
		}
	}
	if t < slices[0].T0 {
		return slices[0].PodNet, slices[0].FS
	}
	last := slices[len(slices)-1]
	return last.PodNet, last.FS
}

// capNodes deterministically subsamples large scopes (every k-th node) so
// machine-wide aggregation stays cheap; see maxScopeNodes.
func capNodes(nodes []cluster.NodeID) []cluster.NodeID {
	if len(nodes) <= maxScopeNodes {
		return nodes
	}
	out := make([]cluster.NodeID, 0, maxScopeNodes)
	return appendCapped(out, nodes)
}

// capNodesInto is capNodes reusing the sampler's scratch buffer; the
// result is valid until the next capNodesInto call.
func (s *Sampler) capNodesInto(nodes []cluster.NodeID) []cluster.NodeID {
	if len(nodes) <= maxScopeNodes {
		return nodes
	}
	if s.capBuf == nil {
		s.capBuf = make([]cluster.NodeID, 0, maxScopeNodes)
	}
	s.capBuf = appendCapped(s.capBuf[:0], nodes)
	return s.capBuf
}

func appendCapped(out, nodes []cluster.NodeID) []cluster.NodeID {
	stride := float64(len(nodes)) / float64(maxScopeNodes)
	for i := 0; i < maxScopeNodes; i++ {
		out = append(out, nodes[int(float64(i)*stride)])
	}
	return out
}

// resizeFloats returns a length-n slice, reusing buf's backing array when
// it is large enough.
func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// AllNodes returns the node IDs of the whole machine, for machine-wide
// aggregation scopes.
func AllNodes(topo cluster.Topology) []cluster.NodeID {
	out := make([]cluster.NodeID, topo.Nodes)
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}
