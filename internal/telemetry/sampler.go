package telemetry

import (
	"fmt"
	"math"

	"rush/internal/cluster"
	"rush/internal/sim"
	"rush/internal/simnet"
)

// SamplePeriod is the LDMS sampling cadence in seconds. Ticks are aligned
// to multiples of the period globally, so the same instant always yields
// the same sample regardless of which window asks for it.
const SamplePeriod = 15.0

// WindowSeconds is the aggregation window used throughout the paper: the
// five minutes of counter data preceding a job's start.
const WindowSeconds = 300.0

// maxScopeNodes caps how many nodes an aggregation walks. The paper's
// "all nodes" scope covers the whole machine; statistically a fixed-size
// deterministic stratified subset preserves the min/mean/max aggregates
// while keeping the simulated collection pipeline tractable. Job-scoped
// aggregations are far below the cap and are never subsampled.
const maxScopeNodes = 64

// FaultModel lets a fault injector corrupt the counter stream the
// sampler synthesizes, reproducing the gaps and stalls of a real LDMS
// deployment. Implementations must be pure functions of their arguments
// (and their own seed) so that overlapping windows agree on shared
// samples and runs stay reproducible.
type FaultModel interface {
	// Dropped reports whether the sample of the given table on node at
	// tick was lost in transit. A dropped table contributes NaN to every
	// aggregate of its counters at that tick.
	Dropped(table string, node cluster.NodeID, tick int64) bool
	// SampleTick returns the tick whose value is actually reported at
	// tick: normally tick itself, or an earlier tick while the node's
	// counters are frozen (a stalled sampler keeps resending stale
	// values). The result must never exceed tick.
	SampleTick(node cluster.NodeID, tick int64) int64
}

// Sampler synthesizes counter samples from the simulator's load history.
type Sampler struct {
	topo   cluster.Topology
	schema []Counter
	rng    *sim.Source
	faults FaultModel
}

// NewSampler returns a sampler over topo whose noise derives from rng
// (use a dedicated child stream, e.g. root.Derive("telemetry")).
func NewSampler(topo cluster.Topology, rng *sim.Source) *Sampler {
	return &Sampler{topo: topo, schema: Schema(), rng: rng}
}

// SetFaults installs a fault model (nil restores the healthy stream).
func (s *Sampler) SetFaults(f FaultModel) { s.faults = f }

// Schema returns the sampler's counter schema.
func (s *Sampler) Schema() []Counter { return s.schema }

// Aggregates holds min/mean/max per counter, aggregated over every
// (node, sample tick) pair in a window, in schema order. Under an active
// fault model a counter whose every sample was dropped aggregates to NaN
// in all three slices; downstream feature consumers must tolerate that.
type Aggregates struct {
	Min  []float64
	Mean []float64
	Max  []float64
}

// MissingFraction returns the share of counters whose aggregates are NaN
// (every sample in the window was dropped).
func (a Aggregates) MissingFraction() float64 {
	if len(a.Mean) == 0 {
		return 0
	}
	missing := 0
	for _, v := range a.Mean {
		if math.IsNaN(v) {
			missing++
		}
	}
	return float64(missing) / float64(len(a.Mean))
}

// sampleValue computes one counter's value on one node at one tick given
// the latent loads. Noise is a deterministic hash of (counter, node,
// tick), so overlapping windows agree on shared samples.
func (s *Sampler) sampleValue(c *Counter, ci int, node cluster.NodeID, tick int64, netLoad, fsLoad float64) float64 {
	var signal float64
	switch c.Src {
	case SrcNet:
		signal = netLoad
	case SrcNetOverload:
		signal = simnet.Overload(netLoad)
	case SrcFS:
		signal = fsLoad
	case SrcFSOverload:
		signal = simnet.Overload(fsLoad)
	case SrcNoise:
		signal = 0
	default:
		panic(fmt.Sprintf("telemetry: unknown source %d", c.Src))
	}
	// Uniform multiplicative noise with the configured sigma. Uniform on
	// [-sqrt(3)sigma, +sqrt(3)sigma] matches the variance of a normal at
	// a fraction of the cost, and counters aren't Gaussian anyway.
	u := 2*s.rng.HashUnit(uint64(ci)+1, uint64(node)+0x9e37, uint64(tick)+0x7f4a) - 1
	v := (c.Base + c.Gain*signal) * (1 + c.Noise*u*math.Sqrt(3))
	if v < 0 {
		v = 0
	}
	return v
}

// AggregateWindow computes min/mean/max of every counter over the window
// [t1-WindowSeconds, t1) across the given nodes, reading latent loads
// from hist. An empty node list or a window with no aligned ticks falls
// back to a single sample at the window end so callers always get a
// complete feature vector.
func (s *Sampler) AggregateWindow(hist *simnet.History, nodes []cluster.NodeID, t1 float64) Aggregates {
	return s.AggregateRange(hist, nodes, t1-WindowSeconds, t1)
}

// AggregateRange is AggregateWindow over an explicit [t0, t1) interval.
func (s *Sampler) AggregateRange(hist *simnet.History, nodes []cluster.NodeID, t0, t1 float64) Aggregates {
	n := len(s.schema)
	agg := Aggregates{
		Min:  make([]float64, n),
		Mean: make([]float64, n),
		Max:  make([]float64, n),
	}
	for i := range agg.Min {
		agg.Min[i] = math.Inf(1)
		agg.Max[i] = math.Inf(-1)
	}
	nodes = capNodes(nodes)
	if len(nodes) == 0 {
		return agg
	}

	ticks := alignedTicks(t0, t1)
	slices := hist.Window(t0, t1)
	counts := make([]int, n)
	for _, tick := range ticks {
		t := float64(tick) * SamplePeriod
		if t < t0 {
			t = t0 // fallback tick for sub-period windows
		}
		netByPod, fs := loadsAt(slices, t)
		for _, node := range nodes {
			// Frozen counters repeat an earlier tick's sample: the value
			// reflects the loads at the freeze instant (clamped to the
			// history the window fetched) and its noise stays constant.
			effTick, effNet, effFS := tick, netByPod, fs
			if s.faults != nil {
				if et := s.faults.SampleTick(node, tick); et < tick {
					effTick = et
					effNet, effFS = loadsAt(slices, float64(et)*SamplePeriod)
				}
			}
			pod := s.topo.PodOf(node)
			var net float64
			if pod < len(effNet) {
				net = effNet[pod]
			}
			lastTable, lastDropped := "", false
			for ci := range s.schema {
				if s.faults != nil {
					// Whole tables drop together (one lost LDMS message
					// per table); memoize across the contiguous block.
					if tb := s.schema[ci].Table; tb != lastTable {
						lastTable = tb
						lastDropped = s.faults.Dropped(tb, node, tick)
					}
					if lastDropped {
						continue
					}
				}
				v := s.sampleValue(&s.schema[ci], ci, node, effTick, net, effFS)
				if v < agg.Min[ci] {
					agg.Min[ci] = v
				}
				if v > agg.Max[ci] {
					agg.Max[ci] = v
				}
				agg.Mean[ci] += v
				counts[ci]++
			}
		}
	}
	for i := range agg.Mean {
		if counts[i] == 0 {
			// Every sample of this counter was dropped: the feature is
			// missing, not zero.
			agg.Min[i], agg.Mean[i], agg.Max[i] = math.NaN(), math.NaN(), math.NaN()
			continue
		}
		agg.Mean[i] /= float64(counts[i])
	}
	return agg
}

// FreshnessAge reports how stale the counter stream feeding a decision at
// time t1 is: the age, in seconds before t1, of the newest sample that
// actually arrived for the given nodes within the standard aggregation
// window — where a frozen sample counts with the age of the instant its
// value reflects. With no fault model installed the age is at most one
// sample period. +Inf means no sample in the window arrived at all.
func (s *Sampler) FreshnessAge(nodes []cluster.NodeID, t1 float64) float64 {
	nodes = capNodes(nodes)
	if len(nodes) == 0 {
		return math.Inf(1)
	}
	ticks := alignedTicks(t1-WindowSeconds, t1)
	if s.faults == nil {
		return t1 - float64(ticks[len(ticks)-1])*SamplePeriod
	}
	tables := s.tables()
	newest := math.Inf(-1)
	for _, tick := range ticks {
		for _, node := range nodes {
			eff := s.faults.SampleTick(node, tick)
			for _, tb := range tables {
				if s.faults.Dropped(tb, node, tick) {
					continue
				}
				if tm := float64(eff) * SamplePeriod; tm > newest {
					newest = tm
				}
				break // all tables share the node's freeze state
			}
		}
	}
	if math.IsInf(newest, -1) {
		return math.Inf(1)
	}
	return t1 - newest
}

// tables returns the distinct table names in schema order.
func (s *Sampler) tables() []string {
	var out []string
	for i := range s.schema {
		if len(out) == 0 || out[len(out)-1] != s.schema[i].Table {
			out = append(out, s.schema[i].Table)
		}
	}
	return out
}

// alignedTicks returns the global tick indices whose sample times fall in
// [t0, t1). A window shorter than one period still yields one tick (the
// one containing t0) so feature vectors are never empty.
func alignedTicks(t0, t1 float64) []int64 {
	first := int64(math.Ceil(t0 / SamplePeriod))
	last := int64(math.Ceil(t1/SamplePeriod)) - 1
	if last < first {
		return []int64{int64(math.Floor(t0 / SamplePeriod))}
	}
	ticks := make([]int64, 0, last-first+1)
	for k := first; k <= last; k++ {
		ticks = append(ticks, k)
	}
	return ticks
}

// loadsAt finds the latent loads at time t within pre-fetched slices.
// Times outside the covered range clamp to the nearest slice.
func loadsAt(slices []simnet.Slice, t float64) ([]float64, float64) {
	if len(slices) == 0 {
		return nil, 0
	}
	for i := range slices {
		if t >= slices[i].T0 && t < slices[i].T1 {
			return slices[i].PodNet, slices[i].FS
		}
	}
	if t < slices[0].T0 {
		return slices[0].PodNet, slices[0].FS
	}
	last := slices[len(slices)-1]
	return last.PodNet, last.FS
}

// capNodes deterministically subsamples large scopes (every k-th node) so
// machine-wide aggregation stays cheap; see maxScopeNodes.
func capNodes(nodes []cluster.NodeID) []cluster.NodeID {
	if len(nodes) <= maxScopeNodes {
		return nodes
	}
	stride := float64(len(nodes)) / float64(maxScopeNodes)
	out := make([]cluster.NodeID, 0, maxScopeNodes)
	for i := 0; i < maxScopeNodes; i++ {
		out = append(out, nodes[int(float64(i)*stride)])
	}
	return out
}

// AllNodes returns the node IDs of the whole machine, for machine-wide
// aggregation scopes.
func AllNodes(topo cluster.Topology) []cluster.NodeID {
	out := make([]cluster.NodeID, topo.Nodes)
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}
