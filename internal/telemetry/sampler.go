package telemetry

import (
	"fmt"
	"math"

	"rush/internal/cluster"
	"rush/internal/sim"
	"rush/internal/simnet"
)

// SamplePeriod is the LDMS sampling cadence in seconds. Ticks are aligned
// to multiples of the period globally, so the same instant always yields
// the same sample regardless of which window asks for it.
const SamplePeriod = 15.0

// WindowSeconds is the aggregation window used throughout the paper: the
// five minutes of counter data preceding a job's start.
const WindowSeconds = 300.0

// maxScopeNodes caps how many nodes an aggregation walks. The paper's
// "all nodes" scope covers the whole machine; statistically a fixed-size
// deterministic stratified subset preserves the min/mean/max aggregates
// while keeping the simulated collection pipeline tractable. Job-scoped
// aggregations are far below the cap and are never subsampled.
const maxScopeNodes = 64

// Sampler synthesizes counter samples from the simulator's load history.
type Sampler struct {
	topo   cluster.Topology
	schema []Counter
	rng    *sim.Source
}

// NewSampler returns a sampler over topo whose noise derives from rng
// (use a dedicated child stream, e.g. root.Derive("telemetry")).
func NewSampler(topo cluster.Topology, rng *sim.Source) *Sampler {
	return &Sampler{topo: topo, schema: Schema(), rng: rng}
}

// Schema returns the sampler's counter schema.
func (s *Sampler) Schema() []Counter { return s.schema }

// Aggregates holds min/mean/max per counter, aggregated over every
// (node, sample tick) pair in a window, in schema order.
type Aggregates struct {
	Min  []float64
	Mean []float64
	Max  []float64
}

// sampleValue computes one counter's value on one node at one tick given
// the latent loads. Noise is a deterministic hash of (counter, node,
// tick), so overlapping windows agree on shared samples.
func (s *Sampler) sampleValue(c *Counter, ci int, node cluster.NodeID, tick int64, netLoad, fsLoad float64) float64 {
	var signal float64
	switch c.Src {
	case SrcNet:
		signal = netLoad
	case SrcNetOverload:
		signal = simnet.Overload(netLoad)
	case SrcFS:
		signal = fsLoad
	case SrcFSOverload:
		signal = simnet.Overload(fsLoad)
	case SrcNoise:
		signal = 0
	default:
		panic(fmt.Sprintf("telemetry: unknown source %d", c.Src))
	}
	// Uniform multiplicative noise with the configured sigma. Uniform on
	// [-sqrt(3)sigma, +sqrt(3)sigma] matches the variance of a normal at
	// a fraction of the cost, and counters aren't Gaussian anyway.
	u := 2*s.rng.HashUnit(uint64(ci)+1, uint64(node)+0x9e37, uint64(tick)+0x7f4a) - 1
	v := (c.Base + c.Gain*signal) * (1 + c.Noise*u*math.Sqrt(3))
	if v < 0 {
		v = 0
	}
	return v
}

// AggregateWindow computes min/mean/max of every counter over the window
// [t1-WindowSeconds, t1) across the given nodes, reading latent loads
// from hist. An empty node list or a window with no aligned ticks falls
// back to a single sample at the window end so callers always get a
// complete feature vector.
func (s *Sampler) AggregateWindow(hist *simnet.History, nodes []cluster.NodeID, t1 float64) Aggregates {
	return s.AggregateRange(hist, nodes, t1-WindowSeconds, t1)
}

// AggregateRange is AggregateWindow over an explicit [t0, t1) interval.
func (s *Sampler) AggregateRange(hist *simnet.History, nodes []cluster.NodeID, t0, t1 float64) Aggregates {
	n := len(s.schema)
	agg := Aggregates{
		Min:  make([]float64, n),
		Mean: make([]float64, n),
		Max:  make([]float64, n),
	}
	for i := range agg.Min {
		agg.Min[i] = math.Inf(1)
		agg.Max[i] = math.Inf(-1)
	}
	nodes = capNodes(nodes)
	if len(nodes) == 0 {
		return agg
	}

	ticks := alignedTicks(t0, t1)
	slices := hist.Window(t0, t1)
	count := 0
	for _, tick := range ticks {
		t := float64(tick) * SamplePeriod
		if t < t0 {
			t = t0 // fallback tick for sub-period windows
		}
		netByPod, fs := loadsAt(slices, t)
		for _, node := range nodes {
			pod := s.topo.PodOf(node)
			var net float64
			if pod < len(netByPod) {
				net = netByPod[pod]
			}
			for ci := range s.schema {
				v := s.sampleValue(&s.schema[ci], ci, node, tick, net, fs)
				if v < agg.Min[ci] {
					agg.Min[ci] = v
				}
				if v > agg.Max[ci] {
					agg.Max[ci] = v
				}
				agg.Mean[ci] += v
			}
			count++
		}
	}
	for i := range agg.Mean {
		agg.Mean[i] /= float64(count)
	}
	return agg
}

// alignedTicks returns the global tick indices whose sample times fall in
// [t0, t1). A window shorter than one period still yields one tick (the
// one containing t0) so feature vectors are never empty.
func alignedTicks(t0, t1 float64) []int64 {
	first := int64(math.Ceil(t0 / SamplePeriod))
	last := int64(math.Ceil(t1/SamplePeriod)) - 1
	if last < first {
		return []int64{int64(math.Floor(t0 / SamplePeriod))}
	}
	ticks := make([]int64, 0, last-first+1)
	for k := first; k <= last; k++ {
		ticks = append(ticks, k)
	}
	return ticks
}

// loadsAt finds the latent loads at time t within pre-fetched slices.
// Times outside the covered range clamp to the nearest slice.
func loadsAt(slices []simnet.Slice, t float64) ([]float64, float64) {
	if len(slices) == 0 {
		return nil, 0
	}
	for i := range slices {
		if t >= slices[i].T0 && t < slices[i].T1 {
			return slices[i].PodNet, slices[i].FS
		}
	}
	if t < slices[0].T0 {
		return slices[0].PodNet, slices[0].FS
	}
	last := slices[len(slices)-1]
	return last.PodNet, last.FS
}

// capNodes deterministically subsamples large scopes (every k-th node) so
// machine-wide aggregation stays cheap; see maxScopeNodes.
func capNodes(nodes []cluster.NodeID) []cluster.NodeID {
	if len(nodes) <= maxScopeNodes {
		return nodes
	}
	stride := float64(len(nodes)) / float64(maxScopeNodes)
	out := make([]cluster.NodeID, 0, maxScopeNodes)
	for i := 0; i < maxScopeNodes; i++ {
		out = append(out, nodes[int(float64(i)*stride)])
	}
	return out
}

// AllNodes returns the node IDs of the whole machine, for machine-wide
// aggregation scopes.
func AllNodes(topo cluster.Topology) []cluster.NodeID {
	out := make([]cluster.NodeID, topo.Nodes)
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}
