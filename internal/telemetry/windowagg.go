package telemetry

import (
	"math"

	"rush/internal/cluster"
	"rush/internal/simnet"
)

// WindowTicks is the number of aligned sample ticks in the standard
// aggregation window.
const WindowTicks = int(WindowSeconds / SamplePeriod)

// WindowAgg incrementally aggregates the standard five-minute window over
// a fixed node scope. It keeps per-tick partial aggregates (node-major
// min/max/sum/count per counter) in a ring keyed by tick index, so
// advancing the window end by Δ ticks recomputes only the Δ new ticks;
// the rest combine from cached partials. Combined results are
// bit-identical to Sampler.AggregateWindow over the same scope: both use
// the same two-level mean fold (see Sampler.aggregateInto).
//
// A WindowAgg is bound to one sampler, one history, and one node scope;
// it inherits the sampler-wide contract that queried windows end at or
// before the current simulated instant. It is not safe for concurrent
// use, matching the sampler itself.
type WindowAgg struct {
	s        *Sampler
	hist     *simnet.History
	nodes    []cluster.NodeID
	faults   FaultModel // fault model the cached partials were computed under
	drift    DriftModel // drift model ditto
	partials []tickPartial
	counts   []int
	sliceBuf []simnet.Slice
}

// tickPartial is the aggregate of one tick across the scope's nodes.
// minEffT is the earliest effective sample instant among the scope's
// rows at this tick: the partial is only reusable for windows whose start
// does not exceed it (frozen rows older than the window start are
// window-clamped and must be recomputed, mirroring rowFor).
type tickPartial struct {
	tick    int64
	minEffT float64
	set     bool
	min     [NumCounters]float64
	max     [NumCounters]float64
	sum     [NumCounters]float64
	count   [NumCounters]int32
}

// NewWindowAgg returns a sliding aggregator over the given scope (capped
// to maxScopeNodes exactly like direct aggregation; the capped scope is
// copied, so the caller may reuse nodes).
func (s *Sampler) NewWindowAgg(hist *simnet.History, nodes []cluster.NodeID) *WindowAgg {
	return &WindowAgg{
		s:        s,
		hist:     hist,
		nodes:    append([]cluster.NodeID(nil), capNodes(nodes)...),
		faults:   s.faults,
		drift:    s.drift,
		counts:   make([]int, len(s.schema)),
		partials: make([]tickPartial, WindowTicks),
	}
}

// Aggregate is AggregateInto returning a fresh Aggregates value.
func (w *WindowAgg) Aggregate(t1 float64) Aggregates {
	var out Aggregates
	w.AggregateInto(t1, &out)
	return out
}

// AggregateInto computes min/mean/max of every counter over the window
// [t1-WindowSeconds, t1) across the aggregator's scope, writing into out
// (reusing its slices). Steady-state calls perform no heap allocations.
func (w *WindowAgg) AggregateInto(t1 float64, out *Aggregates) {
	s := w.s
	t0 := t1 - WindowSeconds
	n := len(s.schema)
	out.Min = resizeFloats(out.Min, n)
	out.Mean = resizeFloats(out.Mean, n)
	out.Max = resizeFloats(out.Max, n)
	for i := 0; i < n; i++ {
		out.Min[i] = math.Inf(1)
		out.Mean[i] = 0
		out.Max[i] = math.Inf(-1)
	}
	if len(w.nodes) == 0 {
		return
	}
	if w.faults != s.faults || w.drift != s.drift {
		// The sampler's fault or drift model changed under us: every
		// cached partial is stale.
		for i := range w.partials {
			w.partials[i].set = false
		}
		w.faults = s.faults
		w.drift = s.drift
	}
	first, last := tickBounds(t0, t1)
	if last < first {
		// Sub-period window: delegate to the direct path's single-sample
		// fallback (never the case for the standard window).
		s.aggregateInto(w.hist, w.nodes, t0, t1, out, true)
		return
	}
	// The standard window spans exactly WindowTicks ticks, but guard
	// against float rounding at the window edges producing one more.
	if c := int(last - first + 1); c > len(w.partials) {
		w.partials = append(w.partials, make([]tickPartial, c-len(w.partials))...)
	}
	ring := int64(len(w.partials))
	w.sliceBuf = w.hist.WindowInto(t0, t1, w.sliceBuf[:0])
	counts := w.counts
	for i := 0; i < n; i++ {
		counts[i] = 0
	}
	for tick := first; tick <= last; tick++ {
		p := &w.partials[int(((tick%ring)+ring)%ring)]
		if !p.set || p.tick != tick || p.minEffT < t0 {
			w.computePartial(tick, t0, p)
		}
		for ci := 0; ci < n; ci++ {
			if p.count[ci] == 0 {
				continue
			}
			if p.min[ci] < out.Min[ci] {
				out.Min[ci] = p.min[ci]
			}
			if p.max[ci] > out.Max[ci] {
				out.Max[ci] = p.max[ci]
			}
			out.Mean[ci] += p.sum[ci]
			counts[ci] += int(p.count[ci])
		}
	}
	for ci := 0; ci < n; ci++ {
		if counts[ci] == 0 {
			out.Min[ci], out.Mean[ci], out.Max[ci] = math.NaN(), math.NaN(), math.NaN()
			continue
		}
		out.Mean[ci] /= float64(counts[ci])
	}
}

// computePartial fills p with tick's node-major aggregate for a window
// starting at t0. Rows come from the sampler's shared row cache, so a
// WindowAgg and direct aggregation queries feed each other's caches.
func (w *WindowAgg) computePartial(tick int64, t0 float64, p *tickPartial) {
	s := w.s
	n := len(s.schema)
	p.tick = tick
	p.set = true
	for ci := 0; ci < n; ci++ {
		p.min[ci] = math.Inf(1)
		p.max[ci] = math.Inf(-1)
		p.sum[ci] = 0
		p.count[ci] = 0
	}
	tickT := float64(tick) * SamplePeriod
	tickNet, tickFS := loadsAt(w.sliceBuf, tickT)
	minEffT := tickT
	for _, node := range w.nodes {
		row := s.rowFor(w.hist, w.sliceBuf, t0, tickT, tickNet, tickFS, node, tick)
		if row.effT < minEffT {
			minEffT = row.effT
		}
		for ci := 0; ci < n; ci++ {
			v := row.vals[ci]
			if math.IsNaN(v) {
				continue
			}
			if v < p.min[ci] {
				p.min[ci] = v
			}
			if v > p.max[ci] {
				p.max[ci] = v
			}
			p.sum[ci] += v
			p.count[ci]++
		}
	}
	p.minEffT = minEffT
}
