package telemetry

import (
	"math"
	"testing"

	"rush/internal/cluster"
	"rush/internal/sim"
	"rush/internal/simnet"
)

// testFaults is a pure-hash fault model for differential tests: whole
// tables drop with probability dropP, and nodes freeze for spans of
// freezeSpan ticks with probability freezeP per span.
type testFaults struct {
	src        *sim.Source
	dropP      float64
	freezeP    float64
	freezeSpan int64
}

func (f testFaults) Dropped(table string, node cluster.NodeID, tick int64) bool {
	return f.src.HashUnit(uint64(len(table)), uint64(table[0]), uint64(node)+13, uint64(tick)+101) < f.dropP
}

func (f testFaults) SampleTick(node cluster.NodeID, tick int64) int64 {
	if tick < 0 {
		return tick
	}
	span := tick / f.freezeSpan
	if f.src.HashUnit(uint64(node)+7, uint64(span)+3) < f.freezeP {
		return span * f.freezeSpan // frozen since the span start
	}
	return tick
}

// sameAggregates compares two aggregate sets bit-for-bit (NaN == NaN).
func sameAggregates(t *testing.T, label string, a, b Aggregates) {
	t.Helper()
	cmp := func(name string, x, y []float64) {
		t.Helper()
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d vs %d", label, name, len(x), len(y))
		}
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(y[i]) {
				t.Fatalf("%s: %s[%d] = %v (0x%x) vs %v (0x%x)",
					label, name, i, x[i], math.Float64bits(x[i]), y[i], math.Float64bits(y[i]))
			}
		}
	}
	cmp("Min", a.Min, b.Min)
	cmp("Mean", a.Mean, b.Mean)
	cmp("Max", a.Max, b.Max)
}

// scrambleLoad applies a deterministic pseudo-random load mutation.
func scrambleLoad(st *simnet.State, rng *sim.Source, step int) simnet.Contribution {
	c := simnet.Contribution{
		PodNet: map[int]float64{step % 4: rng.Uniform(0, 1.2)},
		FS:     rng.Uniform(0, 0.8),
	}
	st.Apply(c)
	return c
}

// TestFastAggregationMatchesReference is the tentpole differential
// property test: over several seeds, with and without fault injection,
// the cached fast path (AggregateRangeInto) must be bit-identical to the
// from-scratch reference (AggregateRangeRef) for a mix of sliding,
// overlapping, and repeated windows interleaved with load changes.
func TestFastAggregationMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, faulted := range []bool{false, true} {
			now := new(float64)
			st, err := simnet.NewState(testTopo(), func() float64 { return *now })
			if err != nil {
				t.Fatal(err)
			}
			sampler := NewSampler(testTopo(), sim.NewSource(11).Derive("telemetry"))
			if faulted {
				sampler.SetFaults(testFaults{
					src:        sim.NewSource(seed).Derive("faults"),
					dropP:      0.3,
					freezeP:    0.25,
					freezeSpan: 7,
				})
			}
			rng := sim.NewSource(seed).Derive("loads")
			nodes := []cluster.NodeID{0, 1, 5, 9, 17, 33, 60}

			var prev simnet.Contribution
			for step := 0; step < 30; step++ {
				// Mutate load at the present, then query windows ending
				// at or before now (the sampler's contract).
				st.Remove(prev)
				prev = scrambleLoad(st, rng, step)
				*now += rng.Uniform(10, 120)

				t1 := *now
				t0 := t1 - WindowSeconds
				if step%3 == 2 {
					// Occasionally a shorter or offset window.
					t1 -= rng.Uniform(0, 60)
					t0 = t1 - rng.Uniform(5, WindowSeconds)
				}
				fast := sampler.AggregateRange(st.History(), nodes, t0, t1)
				ref := sampler.AggregateRangeRef(st.History(), nodes, t0, t1)
				sameAggregates(t, "window", fast, ref)

				// Re-query the same window: fully cached result.
				again := sampler.AggregateRange(st.History(), nodes, t0, t1)
				sameAggregates(t, "requery", again, ref)
			}
			if sampler.CachedRows() == 0 {
				t.Fatal("row cache never populated")
			}
		}
	}
}

// TestWindowAggMatchesReference slides a WindowAgg forward through load
// changes and fault injection and checks every result bit-identical to
// the from-scratch reference over the same scope.
func TestWindowAggMatchesReference(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		now := new(float64)
		st, err := simnet.NewState(testTopo(), func() float64 { return *now })
		if err != nil {
			t.Fatal(err)
		}
		sampler := NewSampler(testTopo(), sim.NewSource(11).Derive("telemetry"))
		if faulted {
			sampler.SetFaults(testFaults{
				src:        sim.NewSource(5).Derive("faults"),
				dropP:      0.25,
				freezeP:    0.3,
				freezeSpan: 9,
			})
		}
		rng := sim.NewSource(21).Derive("loads")
		nodes := AllNodes(testTopo()) // machine-wide scope, like the gate's AllNodesScope
		wa := sampler.NewWindowAgg(st.History(), nodes)

		var prev simnet.Contribution
		for step := 0; step < 40; step++ {
			st.Remove(prev)
			prev = scrambleLoad(st, rng, step)
			// Mostly small advances (partial reuse), sometimes a jump.
			if step%7 == 6 {
				*now += rng.Uniform(WindowSeconds, 2*WindowSeconds)
			} else {
				*now += rng.Uniform(5, 45)
			}
			got := wa.Aggregate(*now)
			want := sampler.AggregateRangeRef(st.History(), nodes, *now-WindowSeconds, *now)
			sameAggregates(t, "sliding", got, want)
		}
	}
}

// TestWindowAggSurvivesFaultSwap checks that swapping the fault model
// invalidates a WindowAgg's cached partials (results keep matching the
// reference after SetFaults).
func TestWindowAggSurvivesFaultSwap(t *testing.T) {
	now := new(float64)
	st, err := simnet.NewState(testTopo(), func() float64 { return *now })
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(testTopo(), sim.NewSource(11).Derive("telemetry"))
	nodes := []cluster.NodeID{0, 1, 2, 3}
	wa := sampler.NewWindowAgg(st.History(), nodes)

	*now = 50
	st.Apply(simnet.Contribution{PodNet: map[int]float64{0: 0.9}})
	*now = 600
	sameAggregates(t, "clean", wa.Aggregate(*now),
		sampler.AggregateRangeRef(st.History(), nodes, *now-WindowSeconds, *now))

	sampler.SetFaults(testFaults{src: sim.NewSource(9), dropP: 0.5, freezeP: 0.5, freezeSpan: 5})
	sameAggregates(t, "faulted", wa.Aggregate(*now),
		sampler.AggregateRangeRef(st.History(), nodes, *now-WindowSeconds, *now))

	sampler.SetFaults(nil)
	sameAggregates(t, "healed", wa.Aggregate(*now),
		sampler.AggregateRangeRef(st.History(), nodes, *now-WindowSeconds, *now))
}

// TestSamplerPrune checks pruning evicts old rows, keeps recent ones, and
// leaves in-window aggregation bit-identical to the reference.
func TestSamplerPrune(t *testing.T) {
	now := new(float64)
	st, err := simnet.NewState(testTopo(), func() float64 { return *now })
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(testTopo(), sim.NewSource(11).Derive("telemetry"))
	nodes := []cluster.NodeID{0, 1, 2, 3}

	*now = 100
	st.Apply(simnet.Contribution{PodNet: map[int]float64{0: 0.5}})
	for _, t1 := range []float64{400, 700, 1000, 1300} {
		*now = t1
		sampler.AggregateWindow(st.History(), nodes, t1)
	}
	before := sampler.CachedRows()
	if before == 0 {
		t.Fatal("no rows cached")
	}
	cut := 1300 - WindowSeconds
	st.History().Prune(cut)
	sampler.Prune(cut)
	after := sampler.CachedRows()
	if after >= before {
		t.Fatalf("prune kept %d of %d rows", after, before)
	}
	fast := sampler.AggregateWindow(st.History(), nodes, 1300)
	ref := sampler.AggregateRangeRef(st.History(), nodes, 1300-WindowSeconds, 1300)
	sameAggregates(t, "post-prune", fast, ref)
}

// TestAggregationSteadyStateZeroAllocs pins the fast path's allocation
// contract: once warm, window aggregation (direct and sliding),
// FreshnessAge, and probe-free feature assembly allocate nothing.
func TestAggregationSteadyStateZeroAllocs(t *testing.T) {
	now := new(float64)
	st, err := simnet.NewState(testTopo(), func() float64 { return *now })
	if err != nil {
		t.Fatal(err)
	}
	sampler := NewSampler(testTopo(), sim.NewSource(11).Derive("telemetry"))
	nodes := AllNodes(testTopo())
	wa := sampler.NewWindowAgg(st.History(), nodes)

	*now = 100
	st.Apply(simnet.Contribution{PodNet: map[int]float64{0: 0.7}, FS: 0.2})
	*now = 900

	var agg Aggregates
	sampler.AggregateWindowInto(st.History(), nodes, *now, &agg) // warm caches and buffers
	wa.AggregateInto(*now, &agg)

	if allocs := testing.AllocsPerRun(100, func() {
		sampler.AggregateWindowInto(st.History(), nodes, *now, &agg)
	}); allocs != 0 {
		t.Fatalf("AggregateWindowInto allocated %.1f times per run; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		wa.AggregateInto(*now, &agg)
	}); allocs != 0 {
		t.Fatalf("WindowAgg.AggregateInto allocated %.1f times per run; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		sampler.FreshnessAge(nodes, *now)
	}); allocs != 0 {
		t.Fatalf("FreshnessAge allocated %.1f times per run; want 0", allocs)
	}
}
