package telemetry

import (
	"math"
	"testing"
	"testing/quick"

	"rush/internal/cluster"
	"rush/internal/sim"
	"rush/internal/simnet"
)

func testTopo() cluster.Topology {
	return cluster.Topology{Nodes: 64, PodSize: 16, CoresPerNode: 4}
}

func TestSchemaMatchesTableI(t *testing.T) {
	cs := Schema()
	if len(cs) != NumCounters || NumCounters != 90 {
		t.Fatalf("schema has %d counters, want 90", len(cs))
	}
	counts := map[string]int{}
	names := map[string]bool{}
	for _, c := range cs {
		counts[c.Table]++
		key := c.Table + "." + c.Name
		if names[key] {
			t.Fatalf("duplicate counter %s", key)
		}
		names[key] = true
		if c.Noise <= 0 {
			t.Fatalf("counter %s has non-positive noise", key)
		}
		if c.Src != SrcNoise && c.Gain <= 0 {
			t.Fatalf("signal counter %s has non-positive gain", key)
		}
		if c.Src == SrcNoise && c.Gain != 0 {
			t.Fatalf("noise counter %s has a gain", key)
		}
	}
	if counts["sysclassib"] != NumSysclassib {
		t.Fatalf("sysclassib has %d counters, want %d", counts["sysclassib"], NumSysclassib)
	}
	if counts["opa_info"] != NumOpaInfo {
		t.Fatalf("opa_info has %d counters, want %d", counts["opa_info"], NumOpaInfo)
	}
	if counts["lustre_client"] != NumLustreClient {
		t.Fatalf("lustre_client has %d counters, want %d", counts["lustre_client"], NumLustreClient)
	}
}

func TestSchemaHasCongestionAndNoiseCounters(t *testing.T) {
	var overload, noise int
	for _, c := range Schema() {
		switch c.Src {
		case SrcNetOverload, SrcFSOverload:
			overload++
		case SrcNoise:
			noise++
		}
	}
	if overload < 5 {
		t.Fatalf("want several overload-driven counters, got %d", overload)
	}
	if noise < 10 {
		t.Fatalf("want several pure-noise counters for RFE to eliminate, got %d", noise)
	}
}

func newEnv() (*simnet.State, *Sampler, *float64) {
	now := new(float64)
	st, err := simnet.NewState(testTopo(), func() float64 { return *now })
	if err != nil {
		panic(err)
	}
	sampler := NewSampler(testTopo(), sim.NewSource(11).Derive("telemetry"))
	return st, sampler, now
}

func TestAggregatesOrdered(t *testing.T) {
	st, sampler, now := newEnv()
	*now = 100
	st.Apply(simnet.Contribution{PodNet: map[int]float64{0: 0.5}, FS: 0.3})
	*now = 700
	nodes := []cluster.NodeID{0, 1, 2, 3}
	agg := sampler.AggregateWindow(st.History(), nodes, *now)
	for i := range agg.Min {
		if !(agg.Min[i] <= agg.Mean[i]+1e-9 && agg.Mean[i] <= agg.Max[i]+1e-9) {
			t.Fatalf("counter %d aggregates out of order: min=%v mean=%v max=%v",
				i, agg.Min[i], agg.Mean[i], agg.Max[i])
		}
		if math.IsInf(agg.Min[i], 0) || math.IsNaN(agg.Mean[i]) {
			t.Fatalf("counter %d has invalid aggregate", i)
		}
	}
}

func TestCountersReflectLoad(t *testing.T) {
	st, sampler, now := newEnv()
	nodes := []cluster.NodeID{0, 1, 2, 3}
	// Calm window.
	*now = 600
	calm := sampler.AggregateWindow(st.History(), nodes, *now)
	// Saturate pod 0's network and the filesystem, then measure again.
	st.Apply(simnet.Contribution{PodNet: map[int]float64{0: 1.1}, FS: 1.05})
	*now = 1200
	hot := sampler.AggregateWindow(st.History(), nodes, *now)

	for ci, c := range sampler.Schema() {
		switch c.Src {
		case SrcNet, SrcNetOverload, SrcFS, SrcFSOverload:
			if hot.Mean[ci] <= calm.Mean[ci] {
				t.Errorf("counter %s.%s should rise under load: calm=%v hot=%v",
					c.Table, c.Name, calm.Mean[ci], hot.Mean[ci])
			}
		}
	}
}

func TestNoiseCountersCarryNoSignal(t *testing.T) {
	st, sampler, now := newEnv()
	nodes := []cluster.NodeID{0, 1}
	*now = 600
	calm := sampler.AggregateWindow(st.History(), nodes, *now)
	st.Apply(simnet.Contribution{PodNet: map[int]float64{0: 1.2}, FS: 1.2})
	*now = 1200
	hot := sampler.AggregateWindow(st.History(), nodes, *now)
	for ci, c := range sampler.Schema() {
		if c.Src != SrcNoise {
			continue
		}
		// Means should stay within the noise band around Base.
		if math.Abs(hot.Mean[ci]-calm.Mean[ci]) > c.Base {
			t.Errorf("noise counter %s.%s moved with load: calm=%v hot=%v",
				c.Table, c.Name, calm.Mean[ci], hot.Mean[ci])
		}
	}
}

func TestJobScopeSeesOnlyItsPod(t *testing.T) {
	st, sampler, now := newEnv()
	// Saturate pod 3 only (nodes 48..63).
	st.Apply(simnet.Contribution{PodNet: map[int]float64{3: 1.2}})
	*now = 600
	quietNodes := []cluster.NodeID{0, 1, 2, 3}
	hotNodes := []cluster.NodeID{48, 49, 50, 51}
	quiet := sampler.AggregateWindow(st.History(), quietNodes, *now)
	hot := sampler.AggregateWindow(st.History(), hotNodes, *now)
	// Find a strongly net-driven counter (port_xmit_data is index 0).
	if hot.Mean[0] <= quiet.Mean[0]*2 {
		t.Fatalf("pod-scoped aggregation leaked: quiet=%v hot=%v", quiet.Mean[0], hot.Mean[0])
	}
}

func TestAggregationDeterministic(t *testing.T) {
	build := func() Aggregates {
		st, sampler, now := newEnv()
		*now = 50
		st.Apply(simnet.Contribution{PodNet: map[int]float64{0: 0.4}, FS: 0.2})
		*now = 500
		return sampler.AggregateWindow(st.History(), []cluster.NodeID{0, 1, 2}, *now)
	}
	a, b := build(), build()
	for i := range a.Mean {
		if a.Mean[i] != b.Mean[i] || a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			t.Fatalf("aggregation not deterministic at counter %d", i)
		}
	}
}

func TestOverlappingWindowsShareSamples(t *testing.T) {
	st, sampler, now := newEnv()
	*now = 1000
	nodes := []cluster.NodeID{5}
	// Two windows that both contain tick t=600.
	a := sampler.AggregateRange(st.History(), nodes, 595, 610)
	b := sampler.AggregateRange(st.History(), nodes, 590, 615)
	// Window a has exactly one tick (600); its mean must appear within
	// window b's [min, max] envelope for every counter.
	for i := range a.Mean {
		if a.Mean[i] < b.Min[i]-1e-9 || a.Mean[i] > b.Max[i]+1e-9 {
			t.Fatalf("tick sample not shared between windows at counter %d", i)
		}
	}
}

func TestShortWindowStillSamples(t *testing.T) {
	st, sampler, now := newEnv()
	*now = 1000
	agg := sampler.AggregateRange(st.History(), []cluster.NodeID{0}, 602, 603)
	for i := range agg.Mean {
		if math.IsNaN(agg.Mean[i]) || math.IsInf(agg.Min[i], 0) {
			t.Fatal("sub-period window must still produce samples")
		}
	}
}

func TestEmptyNodeScope(t *testing.T) {
	st, sampler, now := newEnv()
	*now = 1000
	agg := sampler.AggregateWindow(st.History(), nil, *now)
	if len(agg.Mean) != NumCounters {
		t.Fatal("empty scope should still produce full-length vectors")
	}
}

func TestCapNodes(t *testing.T) {
	nodes := AllNodes(cluster.Quartz())
	capped := capNodes(nodes)
	if len(capped) != maxScopeNodes {
		t.Fatalf("capped to %d nodes, want %d", len(capped), maxScopeNodes)
	}
	seen := map[cluster.NodeID]bool{}
	for _, n := range capped {
		if seen[n] {
			t.Fatal("subsample contains duplicates")
		}
		seen[n] = true
	}
	// Subsample must span the machine, not just a prefix.
	if capped[len(capped)-1] < cluster.NodeID(cluster.Quartz().Nodes/2) {
		t.Fatal("subsample should span the whole machine")
	}
	small := []cluster.NodeID{1, 2, 3}
	if got := capNodes(small); len(got) != 3 {
		t.Fatal("small scopes must not be subsampled")
	}
}

func TestAlignedTicksProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		t0 := float64(aRaw) / 3
		t1 := t0 + float64(bRaw)/7 + 0.01
		ticks := alignedTicks(t0, t1)
		if len(ticks) == 0 {
			return false
		}
		for i, k := range ticks {
			tt := float64(k) * SamplePeriod
			if i > 0 && (tt < t0 || tt >= t1) {
				return false // only the fallback first tick may sit outside
			}
			if i > 0 && ticks[i-1] >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllNodes(t *testing.T) {
	nodes := AllNodes(testTopo())
	if len(nodes) != 64 || nodes[0] != 0 || nodes[63] != 63 {
		t.Fatalf("AllNodes wrong: len=%d", len(nodes))
	}
}
