package sim

import (
	"math"
	"math/rand"
)

// Source is a deterministic random source with support for deriving
// independent child streams. Components of the simulator (network noise,
// per-node telemetry noise, workload generation, ...) each derive their own
// stream so that adding a random draw in one component does not perturb the
// sequence seen by another.
type Source struct {
	seed int64
	rng  *rand.Rand
}

// Seed returns the seed the source was rooted at. Components that need
// many cheap deterministic draws (per node × tick telemetry noise) hash
// this seed directly instead of deriving a child stream per draw.
func (s *Source) Seed() int64 { return s.seed }

// Hash64 mixes the source's seed with the given words into a uniform
// 64-bit value. It is pure: the same inputs always produce the same
// output, independent of any draws made from the source.
func (s *Source) Hash64(words ...uint64) uint64 {
	h := uint64(s.seed)
	for _, w := range words {
		h = splitmix64(h ^ w)
	}
	return splitmix64(h)
}

// HashUnit maps Hash64 to a uniform float in [0, 1).
func (s *Source) HashUnit(words ...uint64) float64 {
	return float64(s.Hash64(words...)>>11) / float64(1<<53)
}

// HashNormal maps Hash64 to a draw from N(mu, sigma^2) via the
// Box–Muller transform on two uniforms expanded from the hash. Like
// Hash64 it is pure, so hot paths that need one Gaussian per entity
// (per-job placement jitter) use it instead of seeding a full child
// stream per entity, which costs a generator-table fill and its
// allocation per call.
func (s *Source) HashNormal(mu, sigma float64, words ...uint64) float64 {
	h := s.Hash64(words...)
	u1 := float64(splitmix64(h)>>11) / float64(1<<53)
	u2 := float64(splitmix64(h^0x9e3779b97f4a7c15)>>11) / float64(1<<53)
	// 1-u1 lies in (0, 1], keeping the log finite.
	z := math.Sqrt(-2*math.Log(1-u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// HashLogNormal returns a draw whose logarithm is N(mu, sigma^2),
// derived purely from the hash of the given words (see HashNormal).
func (s *Source) HashLogNormal(mu, sigma float64, words ...uint64) float64 {
	return math.Exp(s.HashNormal(mu, sigma, words...))
}

// NewSource returns a source rooted at seed.
func NewSource(seed int64) *Source {
	return &Source{seed: seed, rng: rand.New(rand.NewSource(int64(splitmix64(uint64(seed)))))}
}

// Derive returns an independent child stream identified by name. Deriving
// the same name from the same source always yields an identical stream.
func (s *Source) Derive(name string) *Source {
	h := uint64(s.seed)
	for _, c := range []byte(name) {
		h = splitmix64(h ^ uint64(c))
	}
	return NewSource(int64(h))
}

// DeriveN returns an independent child stream identified by name and an
// integer (e.g. a node or job index).
func (s *Source) DeriveN(name string, n int) *Source {
	h := uint64(s.seed)
	for _, c := range []byte(name) {
		h = splitmix64(h ^ uint64(c))
	}
	h = splitmix64(h ^ uint64(n)*0x9e3779b97f4a7c15)
	return NewSource(int64(h))
}

// splitmix64 is the SplitMix64 mixing function; it turns correlated seeds
// into well-distributed ones.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform draw in [0, n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// PermInto fills buf with a pseudo-random permutation of [0, len(buf)),
// drawing exactly the sequence Perm(len(buf)) draws (the Fisher–Yates
// inside-out construction math/rand uses). Hot paths call it with a
// reusable buffer to stay allocation-free without perturbing the stream:
// after PermInto(buf) the source is in the same state as after
// Perm(len(buf)).
func (s *Source) PermInto(buf []int) {
	for i := range buf {
		j := s.rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Normal returns a draw from N(mu, sigma^2).
func (s *Source) Normal(mu, sigma float64) float64 {
	return mu + sigma*s.rng.NormFloat64()
}

// LogNormal returns a draw whose logarithm is N(mu, sigma^2).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Exponential returns a draw from an exponential distribution with the
// given mean.
func (s *Source) Exponential(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }

// Rand exposes the underlying *rand.Rand for callers that need the full
// math/rand API (e.g. rand.Shuffle adapters).
func (s *Source) Rand() *rand.Rand { return s.rng }
