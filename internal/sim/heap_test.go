package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refNode mirrors one queued event's ordering key for the container/heap
// reference implementation the 4-ary heap is differenced against.
type refNode struct {
	time  float64
	seq   uint64
	front bool
	id    int
	pos   int
}

// refHeap is the pre-fast-path event queue: a container/heap interface
// implementation with the same (Time, band, seq) total order. It exists
// only as the differential oracle for eventHeap.
type refHeap []*refNode

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].front != h[j].front {
		return h[i].front
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}
func (h *refHeap) Push(x any) {
	n := x.(*refNode)
	n.pos = len(*h)
	*h = append(*h, n)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	nd.pos = -1
	*h = old[:n-1]
	return nd
}

// TestHeapMatchesContainerHeapReference drives the inline 4-ary heap and
// the container/heap reference with an identical randomized stream of
// push / re-key (Rearm's fix) / remove (Cancel) / pop operations — well
// over 10k events — and requires the pop sequences to be identical at
// every step. Because (time, front, seq) is a total order, any
// divergence is a sift bug, not a legitimate tie.
func TestHeapMatchesContainerHeapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var fast eventHeap
	var ref refHeap

	type pair struct {
		ev *Event
		nd *refNode
	}
	var live []pair
	var seq uint64
	nextID := 0

	push := func() {
		tm := rng.Float64() * 1000
		fr := rng.Intn(8) == 0
		ev := &Event{Time: tm, seq: seq, front: fr}
		nd := &refNode{time: tm, seq: seq, front: fr, id: nextID}
		seq++
		nextID++
		fast.push(ev)
		heap.Push(&ref, nd)
		live = append(live, pair{ev, nd})
	}

	for i := 0; i < 40000; i++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(live) == 0:
			push()
		case op < 6: // re-key in place, as Rearm does
			k := rng.Intn(len(live))
			p := live[k]
			tm := rng.Float64() * 1000
			p.ev.Time = tm
			p.ev.seq = seq
			p.nd.time = tm
			p.nd.seq = seq
			seq++
			fast.fix(p.ev.index)
			heap.Fix(&ref, p.nd.pos)
		case op < 7: // remove, as Cancel does
			k := rng.Intn(len(live))
			p := live[k]
			fast.remove(p.ev.index)
			heap.Remove(&ref, p.nd.pos)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // pop both, compare identity
			gotEv := fast.popMin()
			gotNd := heap.Pop(&ref).(*refNode)
			if gotEv.Time != gotNd.time || gotEv.seq != gotNd.seq || gotEv.front != gotNd.front {
				t.Fatalf("step %d: pop mismatch: fast (t=%v seq=%d front=%v) vs ref (t=%v seq=%d front=%v)",
					i, gotEv.Time, gotEv.seq, gotEv.front, gotNd.time, gotNd.seq, gotNd.front)
			}
			for k := range live {
				if live[k].ev == gotEv {
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					break
				}
			}
		}
		if len(fast) != len(ref) {
			t.Fatalf("step %d: size mismatch: fast %d vs ref %d", i, len(fast), len(ref))
		}
	}
	// Drain: the full residual order must match too.
	for len(fast) > 0 {
		gotEv := fast.popMin()
		gotNd := heap.Pop(&ref).(*refNode)
		if gotEv.Time != gotNd.time || gotEv.seq != gotNd.seq {
			t.Fatalf("drain: pop mismatch: fast (t=%v seq=%d) vs ref (t=%v seq=%d)",
				gotEv.Time, gotEv.seq, gotNd.time, gotNd.seq)
		}
	}
}

// TestHeapIndexInvariant checks that every queued event's index field
// always names its slot, across a randomized op stream — the invariant
// Rearm and Cancel rely on to address the heap in O(1).
func TestHeapIndexInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h eventHeap
	var seq uint64
	for i := 0; i < 20000; i++ {
		switch {
		case rng.Intn(3) != 0 || len(h) == 0:
			h.push(&Event{Time: rng.Float64() * 100, seq: seq})
			seq++
		case rng.Intn(2) == 0:
			k := rng.Intn(len(h))
			h[k].Time = rng.Float64() * 100
			h[k].seq = seq
			seq++
			h.fix(k)
		default:
			h.popMin()
		}
		for j, ev := range h {
			if ev.index != j {
				t.Fatalf("step %d: slot %d holds event with index %d", i, j, ev.index)
			}
		}
	}
}

// TestEngineFrontBand pins the front band's semantics: an AtFront event
// re-armed mid-run to time t fires before normal events that were
// scheduled earlier for the same t, and front events order among
// themselves by schedule order.
func TestEngineFrontBand(t *testing.T) {
	e := New(1)
	var order []string
	e.At(10, func() { order = append(order, "normal-a") })
	e.At(10, func() { order = append(order, "normal-b") })
	f := e.AtFront(5, func() { order = append(order, "front") })
	e.At(5, func() {
		order = append(order, "mover")
		e.Rearm(f, 10) // re-armed after the normals were queued
	})
	e.Run()
	// At t=5 the front event fires first, then the mover re-arms it to
	// t=10 where it must again precede both normal events.
	want := []string{"front", "mover", "front", "normal-a", "normal-b"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestScheduleOncePools checks that ScheduleOnce recycles its events:
// steady-state one-shot timers reuse the freelist instead of growing it,
// and firing order matches Schedule's exactly.
func TestScheduleOncePools(t *testing.T) {
	e := New(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < 1000 {
			e.ScheduleOnce(1, tick)
		}
	}
	e.ScheduleOnce(1, tick)
	e.Run()
	if fired != 1000 {
		t.Fatalf("fired %d, want 1000", fired)
	}
	if len(e.free) != 1 {
		t.Fatalf("freelist holds %d events, want 1 (steady-state reuse)", len(e.free))
	}
}
