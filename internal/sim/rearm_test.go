package sim

import (
	"testing"
)

// TestRearmEquivalentToCancelAndAt pins Rearm's defining property: an
// engine that re-times events in place fires the identical sequence, at
// identical times, as one that cancels and schedules fresh events —
// including the tie-break position among same-time events.
func TestRearmEquivalentToCancelAndAt(t *testing.T) {
	run := func(rearm bool) []int {
		e := New(1)
		var order []int
		mk := func(id int, at float64) *Event {
			return e.At(at, func() { order = append(order, id) })
		}
		a := mk(1, 10)
		mk(2, 10)
		mk(3, 20)
		// Re-time event 1 from t=10 to t=20: it must now fire after
		// event 3 (fresh sequence number), exactly as a new schedule.
		if rearm {
			e.Rearm(a, 20)
		} else {
			e.Cancel(a)
			mk(1, 20)
		}
		e.Run()
		return order
	}
	got, want := run(true), run(false)
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("rearm order %v, cancel+at order %v", got, want)
	}
	if got[0] != 2 || got[1] != 3 || got[2] != 1 {
		t.Fatalf("order = %v, want [2 3 1]", got)
	}
}

// TestRearmRevivesCancelledAndFired pins that Rearm works on events in
// any state: cancelled events revive, and an event may re-arm itself
// from inside its own callback (the periodic-event pooling pattern).
func TestRearmRevivesCancelledAndFired(t *testing.T) {
	e := New(1)
	fires := 0
	var ev *Event
	ev = e.Schedule(5, func() {
		fires++
		if fires < 3 {
			e.Rearm(ev, e.Now()+5)
		}
	})
	e.Cancel(ev)
	e.Rearm(ev, 5) // revive
	e.Run()
	if fires != 3 {
		t.Fatalf("fires = %d, want 3 (revival + 2 self-rearms)", fires)
	}
	if e.Now() != 15 {
		t.Fatalf("final time = %v, want 15", e.Now())
	}
}

// TestRearmIntoPastPanics pins the same causality guard At has.
func TestRearmIntoPastPanics(t *testing.T) {
	e := New(1)
	ev := e.At(10, func() {})
	e.RunUntil(8)
	defer func() {
		if recover() == nil {
			t.Fatal("rearm into the past must panic")
		}
	}()
	e.Rearm(ev, 5)
}

// TestRearmDoesNotAllocate pins the pooling contract: re-timing a
// queued event performs zero heap allocations, so completion
// rescheduling under contention churn is allocation-free.
func TestRearmDoesNotAllocate(t *testing.T) {
	e := New(1)
	ev := e.At(1e18, func() {})
	for i := 0; i < 64; i++ {
		// A small heap so Fix/Push have real work to do.
		e.At(1e17+float64(i), func() {})
	}
	n := testing.AllocsPerRun(1000, func() {
		e.Rearm(ev, 1e18)
	})
	if n != 0 {
		t.Fatalf("Rearm allocates %v times per op, want 0", n)
	}
}

// TestRearmCountsAsScheduled pins the metrics contract: a rearm is a
// schedule for accounting purposes, exactly like the Cancel+At pair it
// replaces minus the cancel.
func TestRearmCountsAsScheduled(t *testing.T) {
	e := New(1)
	ev := e.At(10, func() {})
	before := e.seq
	e.Rearm(ev, 12)
	if e.seq != before+1 {
		t.Fatalf("seq advanced by %d, want 1", e.seq-before)
	}
}
