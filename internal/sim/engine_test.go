package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := New(1)
	var fired []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Fatalf("expected 5 events, got %d", len(fired))
	}
	if e.Now() != 5 {
		t.Fatalf("clock should rest at last event time, got %v", e.Now())
	}
}

func TestEngineTiesFireInScheduleOrder(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New(1)
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	e.Cancel(ev)
	e.Run()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event should report cancelled")
	}
	// Cancelling twice is a no-op.
	e.Cancel(ev)
}

func TestEngineCancelFromWithinEvent(t *testing.T) {
	e := New(1)
	ran := false
	var ev *Event
	e.Schedule(1, func() { e.Cancel(ev) })
	ev = e.Schedule(2, func() { ran = true })
	e.Run()
	if ran {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New(1)
	var fired []float64
	for _, d := range []float64{1, 2, 3, 4} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("expected 2 events before 2.5, got %v", fired)
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock should advance to 2.5, got %v", e.Now())
	}
	e.RunUntil(4)
	if len(fired) != 4 {
		t.Fatalf("expected all 4 events by t=4, got %v", fired)
	}
}

func TestEngineScheduleWhileRunning(t *testing.T) {
	e := New(1)
	var fired []string
	e.Schedule(1, func() {
		fired = append(fired, "a")
		e.Schedule(1, func() { fired = append(fired, "b") })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Fatalf("nested scheduling failed: %v", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("want now=2, got %v", e.Now())
	}
}

func TestEngineRejectsPastAndNaN(t *testing.T) {
	e := New(1)
	for _, d := range []float64{-1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Schedule(%v) should panic", d)
				}
			}()
			e.Schedule(d, func() {})
		}()
	}
}

// Property: regardless of the insertion order of delays, events pop in
// non-decreasing time order.
func TestEnginePopOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New(42)
		var fired []float64
		for _, r := range raw {
			d := float64(r) / 100.0
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSourceDeriveIsStable(t *testing.T) {
	a := NewSource(7).Derive("telemetry")
	b := NewSource(7).Derive("telemetry")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("derived streams with same name diverged")
		}
	}
}

func TestSourceDeriveIndependence(t *testing.T) {
	a := NewSource(7).Derive("alpha")
	b := NewSource(7).Derive("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names look identical (%d/100 equal draws)", same)
	}
}

func TestSourceDeriveNDistinct(t *testing.T) {
	root := NewSource(7)
	seen := map[float64]bool{}
	for i := 0; i < 50; i++ {
		v := root.DeriveN("node", i).Float64()
		if seen[v] {
			t.Fatalf("DeriveN stream %d collides with an earlier stream", i)
		}
		seen[v] = true
	}
}

func TestSourceDistributionsSane(t *testing.T) {
	s := NewSource(3)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("normal mean off: %v", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("normal std off: %v", std)
	}
	for i := 0; i < 1000; i++ {
		u := s.Uniform(3, 5)
		if u < 3 || u >= 5 {
			t.Fatalf("uniform out of range: %v", u)
		}
		if s.LogNormal(0, 0.1) <= 0 {
			t.Fatal("lognormal must be positive")
		}
		if s.Exponential(2) < 0 {
			t.Fatal("exponential must be non-negative")
		}
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []float64 {
		e := New(99)
		src := e.Source().Derive("x")
		var out []float64
		var step func()
		step = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				e.Schedule(src.Uniform(0.1, 2), step)
			}
		}
		e.Schedule(0, step)
		e.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("simulation not deterministic at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineIntrospection(t *testing.T) {
	e := New(1)
	if e.Pending() != 0 || e.Fired() != 0 {
		t.Fatal("fresh engine should be empty")
	}
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run()
	if e.Fired() != 2 || e.Pending() != 0 {
		t.Fatalf("fired=%d pending=%d", e.Fired(), e.Pending())
	}
}

func TestEngineRunUntilSkipsCancelledHead(t *testing.T) {
	e := New(1)
	ev := e.Schedule(1, func() { t.Fatal("cancelled event fired") })
	fired := false
	e.Schedule(2, func() { fired = true })
	e.Cancel(ev)
	e.RunUntil(3)
	if !fired {
		t.Fatal("later event should fire after cancelled head is skipped")
	}
}

func TestSourceHelpers(t *testing.T) {
	s := NewSource(5)
	if s.Seed() != 5 {
		t.Fatalf("seed = %d", s.Seed())
	}
	if s.Intn(10) < 0 || s.Intn(10) >= 10 {
		t.Fatal("Intn out of range")
	}
	if s.Int63() < 0 {
		t.Fatal("Int63 negative")
	}
	p := s.Perm(5)
	seen := map[int]bool{}
	for _, v := range p {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("perm not a permutation: %v", p)
	}
	xs := []int{1, 2, 3, 4, 5}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Fatal("shuffle lost elements")
	}
	trues := 0
	for i := 0; i < 1000; i++ {
		if s.Bool(0.5) {
			trues++
		}
	}
	if trues < 400 || trues > 600 {
		t.Fatalf("Bool(0.5) fired %d/1000", trues)
	}
	if s.Rand() == nil {
		t.Fatal("Rand accessor nil")
	}
}

func TestHashDeterministicAndUniform(t *testing.T) {
	s := NewSource(9)
	if s.Hash64(1, 2) != s.Hash64(1, 2) {
		t.Fatal("hash not deterministic")
	}
	if s.Hash64(1, 2) == s.Hash64(2, 1) {
		t.Fatal("hash should be order sensitive")
	}
	// Different seeds give different hashes.
	if NewSource(1).Hash64(7) == NewSource(2).Hash64(7) {
		t.Fatal("hash should depend on seed")
	}
	var sum float64
	n := 5000
	for i := 0; i < n; i++ {
		u := s.HashUnit(uint64(i))
		if u < 0 || u >= 1 {
			t.Fatalf("HashUnit out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / float64(n); mean < 0.47 || mean > 0.53 {
		t.Fatalf("HashUnit mean = %v", mean)
	}
}
