// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of scheduled
// events. Events fire in strictly non-decreasing time order; ties are
// broken by scheduling order so that a run is reproducible given the same
// seed and the same sequence of Schedule calls. All stochastic components
// of the simulator draw from random sources derived from the engine seed
// (see rand.go), which makes whole-cluster experiments repeatable
// bit-for-bit.
//
// The queue is an inline index-aware 4-ary min-heap (see heap.go): no
// interface boxing, and Rearm re-times a queued event with one in-place
// O(log n) sift, so the per-event bookkeeping that bounds long-horizon
// replays is a handful of pointer moves. Fire-and-forget callbacks can
// additionally be pooled with ScheduleOnce, which recycles the event
// allocation after the callback runs.
package sim

import (
	"fmt"
	"math"

	"rush/internal/obs"
)

// Event is a scheduled callback. An Event is created by Engine.Schedule or
// Engine.At and may be cancelled with Engine.Cancel before it fires.
type Event struct {
	// Time is the virtual time (in seconds) at which the event fires.
	Time float64
	// Fn is the callback invoked when the event fires.
	Fn func()

	seq       uint64 // tie-breaker: events at equal time fire in schedule order
	index     int    // position in the heap, -1 when not queued
	cancelled bool
	front     bool // front band: fires before normal events at equal time
	pooled    bool // recycled into the engine freelist after firing
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
	rng    *Source
	fired  uint64
	free   []*Event // ScheduleOnce freelist

	cScheduled *obs.Counter
	cFired     *obs.Counter
}

// New returns an engine with its clock at zero whose random streams derive
// from seed.
func New(seed int64) *Engine {
	return &Engine{rng: NewSource(seed)}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events processed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// Source returns the engine's root random source.
func (e *Engine) Source() *Source { return e.rng }

// Instrument attaches metric counters for scheduled and fired events
// (either may be nil). Counting is pure bookkeeping: it never changes
// event order, timing, or randomness, so an instrumented run is
// bit-identical to an uninstrumented one.
func (e *Engine) Instrument(scheduled, fired *obs.Counter) {
	e.cScheduled, e.cFired = scheduled, fired
}

// Schedule registers fn to run delay seconds from now. A negative or NaN
// delay panics: silently clamping would hide causality bugs in the caller.
func (e *Engine) Schedule(delay float64, fn func()) *Event {
	if math.IsNaN(delay) || delay < 0 {
		panic(fmt.Sprintf("sim: invalid schedule delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// ScheduleOnce registers fn to run delay seconds from now on a pooled
// event: the Event is recycled into an engine-owned freelist right after
// the callback returns, so steady-state fire-and-forget timers allocate
// nothing. No handle is returned — a pooled event cannot be cancelled or
// rearmed. Timing and tie-break behaviour are exactly Schedule's.
func (e *Engine) ScheduleOnce(delay float64, fn func()) {
	if math.IsNaN(delay) || delay < 0 {
		panic(fmt.Sprintf("sim: invalid schedule delay %v at t=%v", delay, e.now))
	}
	ev := e.newEvent()
	ev.Time = e.now + delay
	ev.Fn = fn
	ev.seq = e.seq
	e.seq++
	ev.pooled = true
	e.events.push(ev)
	e.cScheduled.Inc()
}

// newEvent returns a zeroed event, recycled from the ScheduleOnce
// freelist when one is available.
func (e *Engine) newEvent() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// At registers fn to run at absolute virtual time t, which must not be in
// the past.
func (e *Engine) At(t float64, fn func()) *Event {
	return e.at(t, fn, false)
}

// AtFront registers fn to run at absolute virtual time t in the front
// band: among events at the same instant, front events fire before every
// normally scheduled one (front events order among themselves by
// schedule order as usual). The band exists for streaming workload
// feeders — a feeder re-armed mid-run must still deliver submissions at
// time t ahead of simulation events that were scheduled earlier for the
// same t, reproducing exactly the order an eager driver that pre-queued
// every submission before the run would have produced. Rearm preserves
// the band.
func (e *Engine) AtFront(t float64, fn func()) *Event {
	return e.at(t, fn, true)
}

func (e *Engine) at(t float64, fn func(), front bool) *Event {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("sim: schedule into the past: t=%v now=%v", t, e.now))
	}
	ev := &Event{Time: t, Fn: fn, seq: e.seq, front: front}
	e.seq++
	e.events.push(ev)
	e.cScheduled.Inc()
	return ev
}

// Rearm re-times ev to fire at absolute virtual time t, which must not
// be in the past. It is equivalent to Cancel(ev) followed by
// At(t, ev.Fn) — the event receives a fresh sequence number, so its
// tie-break position among same-time events is exactly as if it had
// been newly scheduled — but reuses ev's allocation; a queued event is
// re-sifted in place (O(log n), no pop/push pair). Rearm works on
// queued, cancelled, and already-fired events alike, which lets a
// long-lived process (a job's completion event, a periodic sampler, a
// streaming submission feeder) drive the whole simulation from a single
// Event value. The event keeps its band (At vs AtFront).
func (e *Engine) Rearm(ev *Event, t float64) {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("sim: rearm into the past: t=%v now=%v", t, e.now))
	}
	ev.Time = t
	ev.seq = e.seq
	e.seq++
	ev.cancelled = false
	if ev.index >= 0 {
		e.events.fix(ev.index)
	} else {
		e.events.push(ev)
	}
	e.cScheduled.Inc()
}

// Cancel prevents ev from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled {
		return
	}
	ev.cancelled = true
	if ev.index >= 0 {
		e.events.remove(ev.index)
	}
}

// Step fires the next pending event and returns true, or returns false if
// no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.events.popMin()
		if ev.cancelled {
			continue
		}
		e.now = ev.Time
		e.fired++
		e.cFired.Inc()
		fn := ev.Fn
		if ev.pooled {
			// Recycle before the callback runs so fn can immediately
			// reuse the slot for its own ScheduleOnce; the event carries
			// no state the callback could observe.
			*ev = Event{}
			e.free = append(e.free, ev)
		}
		fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with Time <= t and then advances the clock to t.
// Events scheduled at exactly t do fire.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 {
		next := e.peek()
		if next == nil || next.Time > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		if e.events[0].cancelled {
			e.events.popMin()
			continue
		}
		return e.events[0]
	}
	return nil
}
