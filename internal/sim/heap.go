package sim

// The event queue is an index-aware 4-ary min-heap stored inline as a
// slice of *Event — no container/heap, no `any` boxing, no interface
// dispatch on the hottest shared path in the simulator (every event
// costs at least one push and one pop, and every completion re-timing
// is a Fix). A 4-ary layout halves the tree depth of a binary heap and
// keeps the four children of a node in adjacent cache lines, which is
// where the win over container/heap comes from at million-event scale.
//
// Ordering is the engine's total order (Time, band, seq): earlier time
// first, front-band events before normal events at equal time, and
// schedule order within a band. Because the order is total, the pop
// sequence is fully determined by the set of queued events — heap shape
// can never leak into simulation behaviour. The property tests in
// heap_test.go pin the pop order against a container/heap reference
// implementation over randomized Schedule/Rearm/Cancel streams.

// eventBefore is the engine's total event order: (Time, band, seq).
func eventBefore(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.front != b.front {
		return a.front
	}
	return a.seq < b.seq
}

// eventHeap is the inline 4-ary min-heap. Every queued event records
// its slot in Event.index (-1 when not queued), so Rearm and Cancel
// address the heap in O(1) and re-heapify in place.
type eventHeap []*Event

// push appends ev and sifts it into place.
func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	ev.index = len(*h) - 1
	h.siftUp(ev.index)
}

// popMin removes and returns the minimum event.
func (h *eventHeap) popMin() *Event {
	old := *h
	ev := old[0]
	n := len(old) - 1
	last := old[n]
	old[n] = nil
	*h = old[:n]
	ev.index = -1
	if n > 0 {
		old[0] = last
		last.index = 0
		h.siftDown(0)
	}
	return ev
}

// remove deletes the event at slot i by swapping in the last element
// and re-sifting it in whichever direction it violates heap order.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	ev := old[i]
	last := old[n]
	old[n] = nil
	*h = old[:n]
	ev.index = -1
	if i < n {
		old[i] = last
		last.index = i
		h.fix(i)
	}
}

// fix restores heap order after the event at slot i changed its key:
// one sift up, and if the event did not move, one sift down. This is
// what keeps Rearm O(log n) in place instead of a remove + push.
func (h *eventHeap) fix(i int) {
	ev := (*h)[i]
	h.siftUp(i)
	if ev.index == i {
		h.siftDown(i)
	}
}

// siftUp moves the event at slot i toward the root until its parent is
// not after it. The hole-and-slide form writes each displaced parent
// once instead of swapping pairwise.
func (h *eventHeap) siftUp(i int) {
	s := *h
	ev := s[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventBefore(ev, s[p]) {
			break
		}
		s[i] = s[p]
		s[i].index = i
		i = p
	}
	s[i] = ev
	ev.index = i
}

// siftDown moves the event at slot i toward the leaves, following the
// smallest of its up-to-four children each level.
func (h *eventHeap) siftDown(i int) {
	s := *h
	n := len(s)
	ev := s[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if eventBefore(s[j], s[m]) {
				m = j
			}
		}
		if !eventBefore(s[m], ev) {
			break
		}
		s[i] = s[m]
		s[i].index = i
		i = m
	}
	s[i] = ev
	ev.index = i
}
